//! Prints every experiment table of the reproduction (see EXPERIMENTS.md).
//!
//! Usage:
//!   experiments                      # run the standard experiments (e1-e9, e11, e13)
//!   experiments e1 e4                # run a subset
//!   experiments e10                  # the 10^6-node tier (opt-in: heavy)
//!   experiments --threads 4 e10      # ... on the sharded engine
//!   experiments --json out.json      # also write the tables as JSON
//!   experiments e8 --json out.json   # subset + JSON
//!   experiments e13 --json w.json    # workload tier; JSON embeds the full
//!                                    # latency histograms under "extra"
//!
//! `--threads N` sets the `LCS_THREADS` environment variable before any
//! table runs, which selects the simulator's round engine (and the
//! parallel quality sweeps) for the whole process; the count is recorded in
//! the JSON output. Every table's values are identical for every thread
//! count — only the wall-clock columns move. The flag is parsed by
//! [`lcs_api::Threads::parse`], so zero and non-numeric counts are rejected
//! with a clear error instead of silently defaulting.

use lcs_bench::{
    e10_scale_table, e11_serving_table, e13_workload_table, e1_quality_table,
    e2_findshortcut_table, e3_routing_table, e4_mst_table, e5_core_table, e6_doubling_table,
    e7_guarantees_table, e8_dist_table, e9_scale_table, render_table, tables_to_json, timed_table,
    timed_table_with_extra, Table, TimedTable,
};

/// Most tables are plain; E13 additionally returns a JSON payload (its
/// full latency histograms) that `--json` embeds under `"extra"`.
#[derive(Clone, Copy)]
enum TableBuilder {
    Plain(fn() -> Table),
    WithExtra(fn() -> (Table, String)),
}

fn main() {
    let mut json_path: Option<String> = None;
    let mut requested: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--json" {
            match args.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("--json requires a path argument");
                    std::process::exit(2);
                }
            }
        } else if arg == "--threads" {
            let value = args.next().unwrap_or_default();
            match lcs_api::Threads::parse(&value) {
                Ok(threads) => {
                    std::env::set_var("LCS_THREADS", threads.resolve().to_string());
                }
                Err(err) => {
                    eprintln!("--threads: {err}");
                    std::process::exit(2);
                }
            }
        } else {
            requested.push(arg.to_lowercase());
        }
    }

    let all: Vec<(&str, TableBuilder)> = vec![
        ("e1", TableBuilder::Plain(e1_quality_table)),
        ("e2", TableBuilder::Plain(e2_findshortcut_table)),
        ("e3", TableBuilder::Plain(e3_routing_table)),
        ("e4", TableBuilder::Plain(e4_mst_table)),
        ("e5", TableBuilder::Plain(e5_core_table)),
        ("e6", TableBuilder::Plain(e6_doubling_table)),
        ("e7", TableBuilder::Plain(e7_guarantees_table)),
        ("e8", TableBuilder::Plain(e8_dist_table)),
        ("e9", TableBuilder::Plain(e9_scale_table)),
        ("e10", TableBuilder::Plain(e10_scale_table)),
        ("e11", TableBuilder::Plain(e11_serving_table)),
        ("e13", TableBuilder::WithExtra(e13_workload_table)),
    ];
    // Fail loudly on anything that is not a known experiment id — a typoed
    // flag must not silently produce an empty run (CI consumes the JSON).
    for r in &requested {
        if !all.iter().any(|(name, _)| name == r) {
            eprintln!(
                "unknown argument `{r}`; expected experiment ids {}, --threads <n> or --json <path>",
                all.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(", ")
            );
            std::process::exit(2);
        }
    }
    let mut built: Vec<TimedTable> = Vec::new();
    for (name, build) in all {
        // e10 is the heavy scale tier: it only runs when asked for by name,
        // so the default invocation stays within the e1-e9 budget.
        let selected = if requested.is_empty() {
            name != "e10"
        } else {
            requested.iter().any(|r| r == name)
        };
        if selected {
            eprintln!("running {name}...");
            let timed = match build {
                TableBuilder::Plain(build) => timed_table(name, build),
                TableBuilder::WithExtra(build) => timed_table_with_extra(name, || {
                    let (table, extra) = build();
                    (table, Some(extra))
                }),
            };
            println!("{}", render_table(&timed.table));
            eprintln!("{name} built in {:.1} ms", timed.millis);
            built.push(timed);
        }
    }

    if let Some(path) = json_path {
        let json = tables_to_json(&built, lcs_api::graph::configured_threads());
        if let Err(err) = std::fs::write(&path, json) {
            eprintln!("failed to write {path}: {err}");
            std::process::exit(1);
        }
        eprintln!("wrote {} table(s) to {path}", built.len());
    }
}
