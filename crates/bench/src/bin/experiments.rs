//! Prints every experiment table of the reproduction (see EXPERIMENTS.md).
//!
//! Usage:
//!   experiments            # run all experiments
//!   experiments e1 e4      # run a subset

use lcs_bench::{
    e1_quality_table, e2_findshortcut_table, e3_routing_table, e4_mst_table, e5_core_table,
    e6_doubling_table, e7_guarantees_table, render_table, Table,
};

type TableBuilder = fn() -> Table;

fn main() {
    let requested: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let all: Vec<(&str, TableBuilder)> = vec![
        ("e1", e1_quality_table),
        ("e2", e2_findshortcut_table),
        ("e3", e3_routing_table),
        ("e4", e4_mst_table),
        ("e5", e5_core_table),
        ("e6", e6_doubling_table),
        ("e7", e7_guarantees_table),
    ];
    for (name, build) in all {
        if requested.is_empty() || requested.iter().any(|r| r == name) {
            eprintln!("running {name}...");
            let table = build();
            println!("{}", render_table(&table));
        }
    }
}
