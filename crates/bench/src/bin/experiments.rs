//! Prints every experiment table of the reproduction (see EXPERIMENTS.md).
//!
//! Usage:
//!   experiments                      # run the standard experiments (e1-e9, e11, e13-e17)
//!   experiments --list               # list every table with a one-line description
//!   experiments e1 e4                # run a subset
//!   experiments e10                  # the 10^6-node tier (opt-in: heavy)
//!   experiments --threads 4 e10      # ... on the sharded engine
//!   experiments --json out.json      # also write the tables as JSON
//!   experiments e8 --json out.json   # subset + JSON
//!   experiments e13 --json w.json    # workload tier; JSON embeds the full
//!                                    # latency histograms under "extra"
//!   experiments e14                  # instrumentation overhead, recorder off vs on
//!   experiments e15                  # robustness: fault-injected verification
//!   experiments e16                  # incremental repair: update vs rebuild
//!   experiments e17                  # server tier: concurrent TCP serving
//!
//! `--threads N` sets the `LCS_THREADS` environment variable before any
//! table runs, which selects the simulator's round engine (and the
//! parallel quality sweeps) for the whole process; the count is recorded in
//! the JSON output. Every table's values are identical for every thread
//! count — only the wall-clock columns move. The flag is parsed by
//! [`lcs_api::Threads::parse`], so zero and non-numeric counts are rejected
//! with a clear error instead of silently defaulting.

use lcs_bench::{
    e10_scale_table, e11_serving_table, e13_workload_table, e14_obs_table, e15_faults_table,
    e16_repair_table, e17_server_table, e1_quality_table, e2_findshortcut_table, e3_routing_table,
    e4_mst_table, e5_core_table, e6_doubling_table, e7_guarantees_table, e8_dist_table,
    e9_scale_table, render_table, tables_to_json, timed_table, timed_table_with_extra, Table,
    TimedTable,
};

/// Most tables are plain; E13/E14 additionally return a JSON payload
/// (latency histograms, metric snapshots) that `--json` embeds under
/// `"extra"`.
#[derive(Clone, Copy)]
enum TableBuilder {
    Plain(fn() -> Table),
    WithExtra(fn() -> (Table, String)),
}

/// One registered experiment: id, one-line description, whether it only
/// runs when asked for by name, and its builder.
struct Experiment {
    name: &'static str,
    description: &'static str,
    opt_in: bool,
    build: TableBuilder,
}

fn main() {
    let mut json_path: Option<String> = None;
    let mut requested: Vec<String> = Vec::new();
    let mut list = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--list" {
            list = true;
        } else if arg == "--json" {
            match args.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("--json requires a path argument");
                    std::process::exit(2);
                }
            }
        } else if arg == "--threads" {
            let value = args.next().unwrap_or_default();
            match lcs_api::Threads::parse(&value) {
                Ok(threads) => {
                    std::env::set_var("LCS_THREADS", threads.resolve().to_string());
                }
                Err(err) => {
                    eprintln!("--threads: {err}");
                    std::process::exit(2);
                }
            }
        } else {
            requested.push(arg.to_lowercase());
        }
    }

    let all: Vec<Experiment> = vec![
        Experiment {
            name: "e1",
            description: "shortcut quality vs Theorem 1 bounds on planar / genus-g families",
            opt_in: false,
            build: TableBuilder::Plain(e1_quality_table),
        },
        Experiment {
            name: "e2",
            description: "FindShortcut acceptance region over the (congestion, block) grid",
            opt_in: false,
            build: TableBuilder::Plain(e2_findshortcut_table),
        },
        Experiment {
            name: "e3",
            description: "tree-restricted routing and convergecast round counts",
            opt_in: false,
            build: TableBuilder::Plain(e3_routing_table),
        },
        Experiment {
            name: "e4",
            description: "MST via shortcut-accelerated Boruvka on planar instances",
            opt_in: false,
            build: TableBuilder::Plain(e4_mst_table),
        },
        Experiment {
            name: "e5",
            description: "core CONGEST primitives (broadcast / aggregate) round counts",
            opt_in: false,
            build: TableBuilder::Plain(e5_core_table),
        },
        Experiment {
            name: "e6",
            description: "doubling search trajectory for unknown quality parameters",
            opt_in: false,
            build: TableBuilder::Plain(e6_doubling_table),
        },
        Experiment {
            name: "e7",
            description: "guarantee cross-check: measured quality vs paper formulas",
            opt_in: false,
            build: TableBuilder::Plain(e7_guarantees_table),
        },
        Experiment {
            name: "e8",
            description: "distributed Lemma 3 verification under simulated message passing",
            opt_in: false,
            build: TableBuilder::Plain(e8_dist_table),
        },
        Experiment {
            name: "e9",
            description: "scale tier at n = 10^4..10^5 with wall-clock columns",
            opt_in: false,
            build: TableBuilder::Plain(e9_scale_table),
        },
        Experiment {
            name: "e10",
            description: "the 10^6-node tier (heavy; minutes of wall-clock)",
            opt_in: true,
            build: TableBuilder::Plain(e10_scale_table),
        },
        Experiment {
            name: "e11",
            description: "serving tier: per-query latency of a warm session",
            opt_in: false,
            build: TableBuilder::Plain(e11_serving_table),
        },
        Experiment {
            name: "e13",
            description: "workload tier: open/closed-loop Zipf traffic tail latencies",
            opt_in: false,
            build: TableBuilder::WithExtra(e13_workload_table),
        },
        Experiment {
            name: "e14",
            description: "instrumentation overhead: recorder off vs on, counter determinism",
            opt_in: false,
            build: TableBuilder::WithExtra(e14_obs_table),
        },
        Experiment {
            name: "e15",
            description: "robustness tier: fault-injected verification, loss x latency x crash",
            opt_in: false,
            build: TableBuilder::WithExtra(e15_faults_table),
        },
        Experiment {
            name: "e16",
            description: "incremental repair: update_partition vs full rebuild, digest-equal",
            opt_in: false,
            build: TableBuilder::WithExtra(e16_repair_table),
        },
        Experiment {
            name: "e17",
            description: "server tier: concurrent TCP serving over one shared warm session",
            opt_in: false,
            build: TableBuilder::WithExtra(e17_server_table),
        },
    ];
    if list {
        for e in &all {
            let status = if e.opt_in { "opt-in" } else { "default" };
            println!("{:<5} {:<8} {}", e.name, status, e.description);
        }
        return;
    }
    // Fail loudly on anything that is not a known experiment id — a typoed
    // flag must not silently produce an empty run (CI consumes the JSON).
    for r in &requested {
        if !all.iter().any(|e| e.name == r) {
            eprintln!(
                "unknown argument `{r}`; expected experiment ids {}, --list, --threads <n> or --json <path>",
                all.iter().map(|e| e.name).collect::<Vec<_>>().join(", ")
            );
            std::process::exit(2);
        }
    }
    let mut built: Vec<TimedTable> = Vec::new();
    for Experiment {
        name,
        opt_in,
        build,
        ..
    } in all
    {
        // Opt-in tiers (e10's 10^6-node instances) only run when asked for
        // by name, so the default invocation stays within the CI budget.
        let selected = if requested.is_empty() {
            !opt_in
        } else {
            requested.iter().any(|r| r == name)
        };
        if selected {
            eprintln!("running {name}...");
            let timed = match build {
                TableBuilder::Plain(build) => timed_table(name, build),
                TableBuilder::WithExtra(build) => timed_table_with_extra(name, || {
                    let (table, extra) = build();
                    (table, Some(extra))
                }),
            };
            println!("{}", render_table(&timed.table));
            eprintln!("{name} built in {:.1} ms", timed.millis);
            built.push(timed);
        }
    }

    if let Some(path) = json_path {
        let json = tables_to_json(&built, lcs_api::graph::configured_threads());
        if let Err(err) = std::fs::write(&path, json) {
            eprintln!("failed to write {path}: {err}");
            std::process::exit(1);
        }
        eprintln!("wrote {} table(s) to {path}", built.len());
    }
}
