//! Experiment harness for the low-congestion shortcuts reproduction.
//!
//! The paper is a theory paper with no numeric tables, so each experiment
//! here regenerates the quantitative content of one theorem or lemma as a
//! table over a parameter sweep (see `DESIGN.md` §5 and `EXPERIMENTS.md`).
//! The same functions back the `experiments` binary (which prints the
//! tables) and the Criterion benches (which time the underlying
//! computations).
//!
//! Every row reports *measured* quantities: round counts come from the
//! exact schedules executed by `lcs-core`/`lcs-mst`, and quality figures are
//! measured on the constructed shortcuts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

pub use experiments::{
    e10_scale_table, e11_serving_table, e13_workload_table, e14_obs_table, e15_faults_table,
    e16_repair_table, e17_server_table, e1_quality_table, e2_findshortcut_table, e3_routing_table,
    e4_mst_table, e5_core_table, e6_doubling_table, e7_guarantees_table, e8_dist_table,
    e9_scale_table, render_table, tables_to_json, timed_table, timed_table_with_extra, Table,
    TimedTable,
};
