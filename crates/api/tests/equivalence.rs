//! API-equivalence suite: every `Session` query must be byte-identical to
//! the direct legacy call it replaces — same shortcuts, same statistics,
//! same traces, same quality, same MST edges — across the generator
//! families, engine thread counts {1, 4}, and both execution modes. This
//! is the contract that lets the experiment tables (and any downstream
//! caller) migrate to the façade without a single value changing.
//!
//! The legacy entry points are deliberately called here despite their
//! deprecation: they are the reference.
#![allow(deprecated)]

use lcs_api::{
    CoreKind, DoublingSpec, ExecutionMode, Pipeline, Session, Strategy, Threads, TreeSpec,
};
use lcs_congest::SimConfig;
use lcs_core::construction::{
    core_fast, core_slow, doubling_search, verification, CoreFastConfig, DoublingConfig,
    FindShortcut, FindShortcutConfig,
};
use lcs_dist::verification_simulated;
use lcs_graph::{generators, EdgeWeights, Graph, NodeId, Partition, RootedTree};
use lcs_mst::{boruvka_mst, BoruvkaConfig, ShortcutStrategy};

/// The instance families the suite sweeps: one representative per
/// generator shape (grid/columns, torus/balls, wheel/arcs, caterpillar,
/// random), sized so the full matrix stays fast.
fn families() -> Vec<(&'static str, Graph, Partition)> {
    let torus = generators::torus(6, 6);
    let torus_balls = generators::partitions::random_bfs_balls(&torus, 6, 2);
    let caterpillar = generators::caterpillar(12, 3);
    let cat_balls = generators::partitions::random_bfs_balls(&caterpillar, 5, 4);
    let random = generators::random_connected(60, 60, 9);
    let random_balls = generators::partitions::random_bfs_balls(&random, 8, 6);
    vec![
        (
            "grid6x6/columns",
            generators::grid(6, 6),
            generators::partitions::grid_columns(6, 6),
        ),
        ("torus6x6/balls", torus, torus_balls),
        (
            "wheel33/arcs",
            generators::wheel(33),
            generators::partitions::wheel_arcs(33, 4),
        ),
        ("caterpillar12x3/balls", caterpillar, cat_balls),
        ("random60/balls", random, random_balls),
    ]
}

fn session(graph: &Graph, threads: usize, mode: ExecutionMode, seed: u64) -> Session<'_> {
    Pipeline::on(graph)
        .threads(Threads::Fixed(threads))
        .execution(mode)
        .seed(seed)
        .build()
        .expect("equivalence families are connected")
}

/// The matrix every check runs over.
const THREADS: [usize; 2] = [1, 4];
const MODES: [ExecutionMode; 2] = [ExecutionMode::Scheduled, ExecutionMode::Simulated];

#[test]
fn doubling_strategy_equals_legacy_doubling_search() {
    for (name, graph, partition) in families() {
        let tree = RootedTree::bfs(&graph, NodeId::new(0));
        let legacy = doubling_search(
            &graph,
            &tree,
            &partition,
            DoublingConfig::new().with_seed(3),
        )
        .expect("families admit shortcuts");
        for threads in THREADS {
            for mode in MODES {
                let s = session(&graph, threads, mode, 3);
                let run = s.shortcut(&partition, Strategy::doubling()).unwrap();
                assert_eq!(run.shortcut, legacy.shortcut, "{name} t={threads} {mode:?}");
                assert_eq!(
                    run.report.attempts.len(),
                    legacy.attempts.len(),
                    "{name} t={threads} {mode:?}"
                );
                for (a, l) in run.report.attempts.iter().zip(&legacy.attempts) {
                    assert_eq!(a.congestion_guess, l.congestion_guess, "{name}");
                    assert_eq!(a.block_guess, l.block_guess, "{name}");
                    assert_eq!(a.succeeded, l.succeeded, "{name}");
                    // Scheduled rounds must match exactly; simulated
                    // verification legitimately charges different (real)
                    // round counts.
                    if mode == ExecutionMode::Scheduled {
                        assert_eq!(a.rounds, l.rounds, "{name} t={threads}");
                    }
                }
                if mode == ExecutionMode::Scheduled {
                    assert_eq!(
                        run.total_rounds(),
                        legacy.total_rounds(),
                        "{name} t={threads}"
                    );
                }
                assert_eq!(
                    run.winning_guess(),
                    Some((legacy.congestion_guess, legacy.block_guess)),
                    "{name}"
                );
            }
        }
    }
}

#[test]
fn fixed_strategy_equals_legacy_find_shortcut_run() {
    for (name, graph, partition) in families() {
        let tree = RootedTree::bfs(&graph, NodeId::new(0));
        let (c, b) = (partition.part_count().max(2), 2);
        let config = FindShortcutConfig::new(c, b).with_seed(5);
        let legacy = FindShortcut::new(config)
            .run(&graph, &tree, &partition)
            .unwrap();
        for threads in THREADS {
            for mode in MODES {
                let s = session(&graph, threads, mode, 5);
                let run = s
                    .shortcut(
                        &partition,
                        Strategy::Fixed {
                            congestion: c,
                            block: b,
                        },
                    )
                    .unwrap();
                // The simulated verifier classifies identically (it is a
                // sound and complete drop-in), so the shortcut and the
                // iteration trajectory agree in every mode; the charged
                // rounds agree in scheduled mode.
                assert_eq!(run.shortcut, legacy.shortcut, "{name} t={threads} {mode:?}");
                assert_eq!(run.report.iterations, legacy.iterations, "{name} {mode:?}");
                assert_eq!(
                    run.report.all_parts_good, legacy.all_parts_good,
                    "{name} {mode:?}"
                );
                if mode == ExecutionMode::Scheduled {
                    assert_eq!(
                        run.total_rounds(),
                        legacy.total_rounds(),
                        "{name} t={threads}"
                    );
                }
            }
        }
    }
}

#[test]
fn slow_core_strategy_equals_legacy_slow_doubling() {
    for (name, graph, partition) in families() {
        let tree = RootedTree::bfs(&graph, NodeId::new(0));
        let legacy = doubling_search(
            &graph,
            &tree,
            &partition,
            DoublingConfig::new().with_slow_core().with_seed(1),
        )
        .unwrap();
        for threads in THREADS {
            let s = session(&graph, threads, ExecutionMode::Scheduled, 1);
            let run = s.shortcut(&partition, Strategy::slow_core()).unwrap();
            assert_eq!(run.shortcut, legacy.shortcut, "{name} t={threads}");
            assert_eq!(run.total_rounds(), legacy.total_rounds(), "{name}");
        }

        // Custom starting guesses keep working through the slow-core
        // strategy too (the capability `DoublingConfig::starting_at`
        // + `with_slow_core` had).
        let legacy = doubling_search(
            &graph,
            &tree,
            &partition,
            DoublingConfig::new()
                .starting_at(2, 2)
                .with_slow_core()
                .with_seed(1),
        )
        .unwrap();
        let s = session(&graph, 1, ExecutionMode::Scheduled, 1);
        let run = s
            .shortcut(
                &partition,
                Strategy::SlowCore(DoublingSpec {
                    initial_congestion: 2,
                    initial_block: 2,
                    ..DoublingSpec::default()
                }),
            )
            .unwrap();
        assert_eq!(
            run.shortcut, legacy.shortcut,
            "{name} slow-core starting_at"
        );
        assert_eq!(run.total_rounds(), legacy.total_rounds(), "{name}");
    }
}

#[test]
fn session_quality_equals_legacy_quality() {
    for (name, graph, partition) in families() {
        let tree = RootedTree::bfs(&graph, NodeId::new(0));
        let legacy_run = doubling_search(&graph, &tree, &partition, DoublingConfig::new()).unwrap();
        let legacy_q = legacy_run.shortcut.quality(&graph, &partition);
        for threads in THREADS {
            let s = session(&graph, threads, ExecutionMode::Scheduled, 0);
            // Quality measured twice through the same pool: warm reuse must
            // not drift.
            for round in 0..2 {
                let q = s.quality(&legacy_run.shortcut, &partition).unwrap();
                assert_eq!(q, legacy_q, "{name} t={threads} round={round}");
            }
        }
    }
}

#[test]
fn session_verify_equals_legacy_verification_in_both_modes() {
    for (name, graph, partition) in families() {
        let tree = RootedTree::bfs(&graph, NodeId::new(0));
        let shortcut = doubling_search(&graph, &tree, &partition, DoublingConfig::new())
            .unwrap()
            .shortcut;
        let active = vec![true; partition.part_count()];
        for threshold in [1usize, 3] {
            let scheduled_legacy =
                verification(&graph, &tree, &partition, &shortcut, threshold, &active);
            for threads in THREADS {
                let s = session(&graph, threads, ExecutionMode::Scheduled, 0);
                let run = s.verify(&shortcut, &partition, threshold).unwrap();
                assert_eq!(run.good, scheduled_legacy.good, "{name} th={threshold}");
                assert_eq!(
                    run.block_counts, scheduled_legacy.block_counts,
                    "{name} th={threshold}"
                );
                assert_eq!(
                    run.report.rounds_charged, scheduled_legacy.rounds,
                    "{name} th={threshold}"
                );

                let simulated_legacy = verification_simulated(
                    &graph,
                    &tree,
                    &partition,
                    &shortcut,
                    threshold,
                    &active,
                    Some(SimConfig::for_graph(&graph).with_threads(threads)),
                )
                .unwrap();
                let s = session(&graph, threads, ExecutionMode::Simulated, 0);
                let run = s.verify(&shortcut, &partition, threshold).unwrap();
                assert_eq!(
                    run.good, simulated_legacy.outcome.good,
                    "{name} t={threads} th={threshold}"
                );
                assert_eq!(
                    run.block_counts, simulated_legacy.outcome.block_counts,
                    "{name} t={threads} th={threshold}"
                );
                assert_eq!(
                    run.report.sim,
                    Some(simulated_legacy.stats),
                    "{name} t={threads} th={threshold}"
                );
                assert_eq!(
                    run.report.rounds_charged, simulated_legacy.outcome.rounds,
                    "{name} t={threads} th={threshold}"
                );
            }
        }
    }
}

#[test]
fn session_verify_trace_equals_legacy_trace() {
    let graph = generators::grid(5, 5);
    let partition = generators::partitions::grid_columns(5, 5);
    let tree = RootedTree::bfs(&graph, NodeId::new(0));
    let shortcut = doubling_search(&graph, &tree, &partition, DoublingConfig::new())
        .unwrap()
        .shortcut;
    let active = vec![true; partition.part_count()];
    for threads in THREADS {
        let legacy = verification_simulated(
            &graph,
            &tree,
            &partition,
            &shortcut,
            2,
            &active,
            Some(
                SimConfig::for_graph(&graph)
                    .with_threads(threads)
                    .with_trace(),
            ),
        )
        .unwrap();
        let s = Pipeline::on(&graph)
            .threads(Threads::Fixed(threads))
            .execution(ExecutionMode::Simulated)
            .trace(true)
            .build()
            .unwrap();
        let run = s.verify(&shortcut, &partition, 2).unwrap();
        assert!(!run.trace.is_empty());
        assert_eq!(run.trace, legacy.trace, "t={threads}");
    }
}

#[test]
fn session_core_equals_legacy_core_subroutines() {
    for (name, graph, partition) in families() {
        let tree = RootedTree::bfs(&graph, NodeId::new(0));
        let active = vec![true; partition.part_count()];
        let c = partition.part_count().max(2) / 2 + 1;
        let legacy_slow = core_slow(&graph, &tree, &partition, c, &active);
        let legacy_fast = core_fast(
            &graph,
            &tree,
            &partition,
            &CoreFastConfig::new(c).with_seed(8),
            &active,
        );
        for threads in THREADS {
            let s = session(&graph, threads, ExecutionMode::Scheduled, 8);
            let slow = s.core(&partition, CoreKind::Slow, c).unwrap();
            let fast = s.core(&partition, CoreKind::Fast, c).unwrap();
            assert_eq!(slow.shortcut, legacy_slow.shortcut, "{name} t={threads}");
            assert_eq!(slow.rounds, legacy_slow.rounds, "{name}");
            assert_eq!(fast.shortcut, legacy_fast.shortcut, "{name} t={threads}");
            assert_eq!(fast.rounds, legacy_fast.rounds, "{name}");
        }
    }
}

#[test]
fn session_mst_equals_legacy_boruvka_in_both_modes() {
    for (name, graph, partition) in families() {
        // MST runs over the whole graph; the partition only proves the
        // family admits one (unused here).
        let _ = partition;
        let weights = EdgeWeights::random_permutation(&graph, 7);
        for mode in MODES {
            let legacy = boruvka_mst(
                &graph,
                &weights,
                &BoruvkaConfig::new(ShortcutStrategy::Doubling)
                    .with_seed(7)
                    .with_execution(mode),
            )
            .unwrap();
            for threads in THREADS {
                let s = session(&graph, threads, mode, 7);
                let run = s.mst(&weights, ShortcutStrategy::Doubling).unwrap();
                assert_eq!(run.edges, legacy.edges, "{name} t={threads} {mode:?}");
                assert_eq!(run.weight, legacy.weight, "{name}");
                assert_eq!(run.phases, legacy.phases, "{name}");
                assert_eq!(
                    run.cost.entries(),
                    legacy.cost.entries(),
                    "{name} t={threads} {mode:?}"
                );
            }
        }
    }
}

#[test]
fn provided_tree_equals_bfs_tree_from_the_same_root() {
    let graph = generators::grid(6, 6);
    let partition = generators::partitions::grid_columns(6, 6);
    let tree = RootedTree::bfs(&graph, NodeId::new(0));
    let via_bfs = Pipeline::on(&graph).build().unwrap();
    let via_provided = Pipeline::on(&graph)
        .tree(TreeSpec::Provided(tree))
        .build()
        .unwrap();
    let a = via_bfs.shortcut(&partition, Strategy::doubling()).unwrap();
    let b = via_provided
        .shortcut(&partition, Strategy::doubling())
        .unwrap();
    assert_eq!(a.shortcut, b.shortcut);
    assert_eq!(a.total_rounds(), b.total_rounds());
}

#[test]
fn doubling_spec_initial_guesses_equal_legacy_starting_at() {
    let graph = generators::grid(6, 6);
    let partition = generators::partitions::grid_columns(6, 6);
    let tree = RootedTree::bfs(&graph, NodeId::new(0));
    let legacy = doubling_search(
        &graph,
        &tree,
        &partition,
        DoublingConfig::new().starting_at(2, 2).with_seed(4),
    )
    .unwrap();
    let s = session(&graph, 1, ExecutionMode::Scheduled, 4);
    let run = s
        .shortcut(
            &partition,
            Strategy::Doubling(DoublingSpec {
                initial_congestion: 2,
                initial_block: 2,
                ..DoublingSpec::default()
            }),
        )
        .unwrap();
    assert_eq!(run.shortcut, legacy.shortcut);
    assert_eq!(run.total_rounds(), legacy.total_rounds());
    assert_eq!(
        run.winning_guess(),
        Some((legacy.congestion_guess, legacy.block_guess))
    );
}
