//! Property-based test: a `Session::batch` over a slice of partitions is
//! exactly a sequence of single `shortcut` + `quality` queries — the
//! workspace reuse across the batch must never leak state between entries.

use proptest::prelude::*;

use lcs_api::{ExecutionMode, Pipeline, Strategy, Threads};
use lcs_graph::{generators, Graph, Partition};

/// One of the generator families with a few different partitions over it.
fn serving_instance(
    which: usize,
    size: usize,
    queries: usize,
    seed: u64,
) -> (Graph, Vec<Partition>) {
    let graph = match which % 3 {
        0 => generators::grid(size, size),
        1 => generators::torus(size, size),
        _ => generators::wheel(4 * size * size + 1),
    };
    let partitions = (0..queries as u64)
        .map(|k| {
            let parts = 2 + ((seed ^ k) % 5) as usize;
            generators::partitions::random_bfs_balls(&graph, parts, seed.wrapping_add(k))
        })
        .collect();
    (graph, partitions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `batch(partitions)` equals sequential single queries: the same
    /// shortcuts, the same attempts, the same measured quality — for both
    /// engine thread counts and both execution modes.
    #[test]
    fn batch_equals_sequential_single_queries(
        which in 0usize..3,
        size in 4usize..7,
        queries in 1usize..5,
        seed in 0u64..200,
        threads_pick in 0usize..2,
        simulated in 0usize..2,
    ) {
        let threads = [1usize, 4][threads_pick];
        let (graph, partitions) = serving_instance(which, size, queries, seed);
        let refs: Vec<&Partition> = partitions.iter().collect();
        let mode = if simulated == 1 {
            ExecutionMode::Simulated
        } else {
            ExecutionMode::Scheduled
        };

        let batch_session = Pipeline::on(&graph)
            .threads(Threads::Fixed(threads))
            .execution(mode)
            .seed(seed)
            .build()
            .unwrap();
        let batched = batch_session.batch(&refs, Strategy::doubling()).unwrap();

        // The sequential reference uses a fresh session per query: if the
        // batch (or the shared session state) leaked anything between
        // entries, some entry would differ from its isolated run.
        let mut singles = Vec::with_capacity(partitions.len());
        for partition in &partitions {
            let one_shot = Pipeline::on(&graph)
                .threads(Threads::Fixed(threads))
                .execution(mode)
                .seed(seed)
                .build()
                .unwrap();
            let mut run = one_shot.shortcut(partition, Strategy::doubling()).unwrap();
            run.report.quality = Some(one_shot.quality(&run.shortcut, partition).unwrap());
            singles.push(run);
        }

        prop_assert_eq!(batched.len(), singles.len());
        for (i, (b, s)) in batched.iter().zip(&singles).enumerate() {
            prop_assert_eq!(&b.shortcut, &s.shortcut, "entry {}", i);
            prop_assert_eq!(&b.report.attempts, &s.report.attempts, "entry {}", i);
            prop_assert_eq!(&b.report.quality, &s.report.quality, "entry {}", i);
            prop_assert_eq!(b.report.rounds_charged, s.report.rounds_charged, "entry {}", i);
            prop_assert_eq!(b.report.iterations, s.report.iterations, "entry {}", i);
        }
    }
}
