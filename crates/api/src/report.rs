//! The unified query report: one serializable record shape for every
//! session query, replacing the per-entry result structs callers previously
//! had to destructure (`DoublingResult` vs `FindShortcutResult` vs
//! `MstOutcome` vs `DistVerificationOutcome`).

use lcs_congest::SimStats;
use lcs_core::ShortcutQuality;
use lcs_obs::json::{escape, push_str_field};

/// One attempt of a doubling search: the parameter guesses, whether every
/// part verified good, and the rounds the attempt cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attempt {
    /// Congestion guess used by the attempt.
    pub congestion_guess: usize,
    /// Block-parameter guess used by the attempt.
    pub block_guess: usize,
    /// Whether every part was verified good.
    pub succeeded: bool,
    /// Rounds spent by the attempt.
    pub rounds: u64,
}

/// The unified record of one session query.
///
/// Every query of a [`crate::Session`] — shortcut construction,
/// verification, MST, batch entries — fills the same shape: which operation
/// and strategy ran, the doubling attempts (if any), the iteration count of
/// the final driver run, the CONGEST rounds *charged* by the scheduled
/// accounting versus *executed* by real message passing, the raw simulator
/// statistics, the measured quality, operation-specific counters, and the
/// wall-clock the query took. Fields an operation has nothing to say about
/// stay empty (`None` / empty vec / 0) rather than changing shape;
/// [`Report::to_json`] serializes the whole record without external
/// dependencies.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// The operation that produced this report (`"shortcut"`, `"verify"`,
    /// `"mst"`, `"core"`).
    pub operation: String,
    /// The strategy label, for operations that take one.
    pub strategy: Option<String>,
    /// Doubling attempts in order; empty for fixed-parameter runs.
    pub attempts: Vec<Attempt>,
    /// Core/verification iterations of the (final) `FindShortcut` run; 0
    /// when not applicable.
    pub iterations: usize,
    /// Whether every queried part ended good (construction) or verified
    /// good (verification). MST reports `true` on success.
    pub all_parts_good: bool,
    /// CONGEST rounds charged by the scheduled accounting.
    pub rounds_charged: u64,
    /// CONGEST rounds actually executed as message passing (`Simulated`
    /// execution only).
    pub rounds_executed: Option<u64>,
    /// Raw statistics of the executed simulation (`Simulated` only).
    pub sim: Option<SimStats>,
    /// Measured quality of the produced shortcut, when the query measures
    /// it (batch entries do; bare construction leaves it to the caller).
    pub quality: Option<ShortcutQuality>,
    /// Operation-specific counters (for example `phases` and `weight` for
    /// MST), as label/value pairs so the record stays one shape.
    pub metrics: Vec<(String, u64)>,
    /// Wall-clock milliseconds the query took.
    pub wall_millis: f64,
}

impl Report {
    /// A report skeleton for `operation`; the query fills in the rest.
    pub(crate) fn new(operation: &str) -> Self {
        Report {
            operation: operation.to_string(),
            strategy: None,
            attempts: Vec::new(),
            iterations: 0,
            all_parts_good: false,
            rounds_charged: 0,
            rounds_executed: None,
            sim: None,
            quality: None,
            metrics: Vec::new(),
            wall_millis: 0.0,
        }
    }

    /// The metric value recorded under `label`, if any.
    pub fn metric(&self, label: &str) -> Option<u64> {
        self.metrics
            .iter()
            .find(|(l, _)| l == label)
            .map(|&(_, v)| v)
    }

    /// Serializes the report as a single JSON object (via the shared
    /// [`lcs_obs::json`] writer: the build environment has no serde).
    /// Unset optional fields become `null`; `sim` and `quality` become
    /// nested objects.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push('{');
        push_str_field(&mut out, "operation", &self.operation);
        out.push(',');
        match &self.strategy {
            Some(s) => {
                push_str_field(&mut out, "strategy", s);
            }
            None => out.push_str("\"strategy\":null"),
        }
        out.push(',');
        out.push_str("\"attempts\":[");
        for (i, a) in self.attempts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"congestion_guess\":{},\"block_guess\":{},\"succeeded\":{},\"rounds\":{}}}",
                a.congestion_guess, a.block_guess, a.succeeded, a.rounds
            ));
        }
        out.push_str("],");
        out.push_str(&format!("\"iterations\":{},", self.iterations));
        out.push_str(&format!("\"all_parts_good\":{},", self.all_parts_good));
        out.push_str(&format!("\"rounds_charged\":{},", self.rounds_charged));
        match self.rounds_executed {
            Some(r) => out.push_str(&format!("\"rounds_executed\":{r},")),
            None => out.push_str("\"rounds_executed\":null,"),
        }
        match &self.sim {
            Some(s) => out.push_str(&format!(
                "\"sim\":{{\"rounds\":{},\"messages\":{},\"total_bits\":{},\"max_message_bits\":{}}},",
                s.rounds, s.messages, s.total_bits, s.max_message_bits
            )),
            None => out.push_str("\"sim\":null,"),
        }
        match &self.quality {
            Some(q) => out.push_str(&format!(
                "\"quality\":{{\"congestion\":{},\"dilation\":{},\"block_parameter\":{}}},",
                q.congestion, q.dilation, q.block_parameter
            )),
            None => out.push_str("\"quality\":null,"),
        }
        out.push_str("\"metrics\":{");
        for (i, (label, value)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape(label), value));
        }
        out.push_str("},");
        out.push_str(&format!("\"wall_millis\":{:.3}", self.wall_millis));
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable_and_balanced() {
        let mut report = Report::new("shortcut");
        report.strategy = Some("doubling".to_string());
        report.attempts.push(Attempt {
            congestion_guess: 1,
            block_guess: 1,
            succeeded: true,
            rounds: 42,
        });
        report.iterations = 2;
        report.all_parts_good = true;
        report.rounds_charged = 42;
        report.metrics.push(("phases".to_string(), 3));
        report.wall_millis = 1.5;
        let json = report.to_json();
        assert!(json.starts_with("{\"operation\":\"shortcut\""));
        assert!(json.contains("\"strategy\":\"doubling\""));
        assert!(json.contains("\"attempts\":[{\"congestion_guess\":1"));
        assert!(json.contains("\"rounds_executed\":null"));
        assert!(json.contains("\"sim\":null"));
        assert!(json.contains("\"metrics\":{\"phases\":3}"));
        assert!(json.contains("\"wall_millis\":1.500"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn sim_and_quality_serialize_as_objects() {
        let mut report = Report::new("verify");
        report.sim = Some(SimStats {
            rounds: 10,
            messages: 20,
            total_bits: 300,
            max_message_bits: 17,
        });
        report.quality = Some(ShortcutQuality {
            congestion: 3,
            dilation: 9,
            block_parameter: 2,
            per_part_blocks: vec![2, 1],
        });
        report.rounds_executed = Some(10);
        let json = report.to_json();
        assert!(json.contains("\"sim\":{\"rounds\":10,\"messages\":20"));
        assert!(
            json.contains("\"quality\":{\"congestion\":3,\"dilation\":9,\"block_parameter\":2}")
        );
        assert!(json.contains("\"rounds_executed\":10"));
    }

    #[test]
    fn metric_lookup() {
        let mut report = Report::new("mst");
        report.metrics.push(("phases".to_string(), 7));
        assert_eq!(report.metric("phases"), Some(7));
        assert_eq!(report.metric("weight"), None);
    }
}
