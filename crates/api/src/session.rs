//! The two-phase front door: [`Pipeline`] (configure once) →
//! [`Session`] (query many times).
//!
//! A `Session` is bound to one graph and owns everything that is reusable
//! across queries on that graph: the rooted spanning tree, the epoch-stamped
//! [`lcs_core::QualityPool`] of the quality measurements, the resolved
//! [`SimConfig`] (bandwidth, tracing, engine thread count), and a
//! precomputed [`ShardMap`] describing the shard layout `Simulated`
//! queries execute on (the engine derives the identical volume-balanced
//! layout per run; the session's copy exposes it for introspection).
//! Repeated queries — `shortcut`, `quality`, `verify`, `mst`, and the
//! multi-query [`Session::batch`] — therefore allocate only their
//! per-query results, never per-graph state; that is the serving posture
//! the experiment tables measure in E11.

use std::sync::Mutex;
use std::time::Instant;

use lcs_congest::{FaultPlan, RoundCost, RoundTrace, SimConfig};
use lcs_core::construction::{
    build_corpus, core_fast, core_slow, repair_corpus, verification, CoreFastConfig, CoreOutcome,
    FindShortcut, FindShortcutConfig, FindShortcutResult, RepairConfig, RepairStats,
    ShortcutCorpus,
};
use lcs_core::routing::ExecutionMode;
use lcs_core::{QualityPool, ShortcutQuality, TreeShortcut};
use lcs_dist::{
    verification_simulated_obs, verification_simulated_parts, verification_with_retry, RetryPolicy,
};
use lcs_graph::{
    is_connected, EdgeId, EdgeWeights, Graph, GraphError, LcsError, PartId, PartSet, Partition,
    PartitionDelta, RootedTree, ShardMap, Threads,
};
use lcs_mst::ShortcutStrategy;
use lcs_obs::Obs;

use crate::{Attempt, CoreKind, Report, Strategy, TreeSpec};

/// Convenience result alias of the façade.
pub type Result<T> = std::result::Result<T, LcsError>;

/// The entry point of the façade: a builder that fixes the per-graph
/// choices (tree, thread count, execution mode, seed, tracing) and
/// [`Pipeline::build`]s a [`Session`].
///
/// ```
/// use lcs_api::{Pipeline, Strategy};
/// use lcs_graph::generators;
///
/// let graph = generators::grid(8, 8);
/// let partition = generators::partitions::grid_columns(8, 8);
/// let mut session = Pipeline::on(&graph).build().unwrap();
/// let run = session.shortcut(&partition, Strategy::doubling()).unwrap();
/// assert!(run.report.all_parts_good);
/// let quality = session.quality(&run.shortcut, &partition).unwrap();
/// assert!(quality.block_parameter <= 3 * run.winning_guess().unwrap().1);
/// ```
#[derive(Debug, Clone)]
pub struct Pipeline<'g> {
    graph: &'g Graph,
    tree: TreeSpec,
    threads: Threads,
    execution: ExecutionMode,
    seed: u64,
    trace: bool,
    recorder: Obs,
    fault: Option<FaultPlan>,
    retry: RetryPolicy,
}

impl<'g> Pipeline<'g> {
    /// Starts a pipeline on `graph` with the defaults: BFS tree rooted at
    /// node 0, `Threads::Auto`, scheduled execution, seed 0, no tracing,
    /// instrumentation off.
    pub fn on(graph: &'g Graph) -> Self {
        Pipeline {
            graph,
            tree: TreeSpec::default(),
            threads: Threads::Auto,
            execution: ExecutionMode::Scheduled,
            seed: 0,
            trace: false,
            recorder: Obs::off(),
            fault: None,
            retry: RetryPolicy::default(),
        }
    }

    /// Attaches an instrumentation handle: the session reports per-query
    /// counters and latency timers (`serve/{kind}/*`), and `Simulated`
    /// queries additionally report the protocol and engine probes
    /// (`dist/*`, `engine/*`), through it. The default ([`Obs::off`])
    /// costs one branch per probe; query results are identical either way.
    pub fn recorder(mut self, obs: Obs) -> Self {
        self.recorder = obs;
        self
    }

    /// Chooses how the spanning tree is obtained (see [`TreeSpec`]).
    pub fn tree(mut self, tree: TreeSpec) -> Self {
        self.tree = tree;
        self
    }

    /// Sets the worker-thread count as a value ([`Threads::Auto`] defers
    /// to the `LCS_THREADS` environment variable at build time). This is
    /// the only thread knob of a session: it selects the simulator's round
    /// engine and sizes the quality pool.
    pub fn threads(mut self, threads: Threads) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the execution mode: `Scheduled` charges the exact centralized
    /// schedules (the default), `Simulated` runs the distributed protocols
    /// as real message passing.
    pub fn execution(mut self, execution: ExecutionMode) -> Self {
        self.execution = execution;
        self
    }

    /// Sets the random seed used by randomized constructions and MST coin
    /// flips.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables per-round simulator tracing for `Simulated` queries; the
    /// trace surfaces on [`VerifyRun::trace`].
    pub fn trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Injects a deterministic fault plan into `Simulated` verification
    /// queries: per-edge latency, message loss/duplication, stragglers, and
    /// crash schedules, all a pure function of the plan's seed. Only
    /// [`Session::verify`] runs under the plan (it is the self-healing
    /// protocol); construction and MST queries run fault-free so their
    /// exact round accounting stays meaningful. An inactive plan (all
    /// knobs zero) is identical to no plan at all.
    pub fn fault(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Sets the retry policy fault-injected verification heals stalled
    /// epochs with (defaults to [`RetryPolicy::default`]).
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Validates the configuration and builds the [`Session`], performing
    /// the one-time per-graph work (BFS tree unless provided, shard map,
    /// quality pool).
    ///
    /// # Errors
    ///
    /// [`LcsError::InconsistentInputs`] for an empty or disconnected graph
    /// or a provided tree over a different node count;
    /// [`LcsError::Graph`] for a BFS root out of range;
    /// [`LcsError::Config`] for a fixed thread count of zero.
    pub fn build(self) -> Result<Session<'g>> {
        let graph = self.graph;
        if graph.node_count() == 0 {
            return Err(LcsError::InconsistentInputs {
                reason: "a session needs a nonempty graph".to_string(),
            });
        }
        if !is_connected(graph) {
            return Err(LcsError::InconsistentInputs {
                reason:
                    "a session needs a connected graph (shortcuts route over one spanning tree)"
                        .to_string(),
            });
        }
        if let Threads::Fixed(0) = self.threads {
            return Err(LcsError::Config {
                reason: "thread count must be at least 1 (got 0)".to_string(),
            });
        }
        let tree = match self.tree {
            TreeSpec::Bfs(root) => {
                if root.index() >= graph.node_count() {
                    return Err(LcsError::Graph(GraphError::NodeOutOfRange {
                        node: root,
                        node_count: graph.node_count(),
                    }));
                }
                RootedTree::bfs(graph, root)
            }
            TreeSpec::Provided(tree) => {
                if tree.node_count() != graph.node_count() {
                    return Err(LcsError::InconsistentInputs {
                        reason: format!(
                            "provided tree spans {} nodes but the graph has {}",
                            tree.node_count(),
                            graph.node_count()
                        ),
                    });
                }
                tree
            }
        };
        let threads = self.threads.resolve();
        let mut sim_config = SimConfig::for_graph(graph).with_threads(threads);
        if self.trace {
            sim_config = sim_config.with_trace();
        }
        if let Some(plan) = self.fault {
            sim_config = sim_config.with_fault(plan);
        }
        Ok(Session {
            graph,
            tree,
            shards: ShardMap::by_volume(graph, threads),
            pool: PoolBank::with(QualityPool::new(graph, threads)),
            threads,
            execution: self.execution,
            seed: self.seed,
            sim_config,
            retry: self.retry,
            obs: self.recorder,
            repair_cache: Vec::new(),
        })
    }
}

/// A per-graph serving session: the owner of every piece of state that can
/// be amortized across queries. Created by [`Pipeline::build`].
pub struct Session<'g> {
    graph: &'g Graph,
    tree: RootedTree,
    shards: ShardMap,
    pool: PoolBank,
    threads: usize,
    execution: ExecutionMode,
    seed: u64,
    sim_config: SimConfig,
    retry: RetryPolicy,
    pub(crate) obs: Obs,
    /// Tracked partitions and their customization corpora, one slot per
    /// strategy label, most recently tracked/updated last.
    repair_cache: Vec<RepairSlot>,
}

/// Free-list cap: workspaces returned while the list is full are dropped
/// instead of pooled, so a burst of concurrent queries cannot pin more
/// than this many per-graph workspaces for the session's lifetime.
const MAX_POOLED_WORKSPACES: usize = 16;

/// The lock-protected free-list of quality workspaces behind every
/// `&self` query path — the checkout scheme that makes one warm session
/// shareable across server worker threads.
///
/// A query checks one [`QualityPool`] out (allocating a fresh one only
/// when every pooled workspace is already in use), runs with exclusive
/// access to it, and returns it. The lock is held for the push/pop only,
/// never across a query. Workspaces are epoch-stamped, so a query
/// observes byte-identical values whether it got a reused pool, a fresh
/// one, or the pool another thread just returned — concurrency changes
/// which workspace serves a query, never what the query answers.
struct PoolBank {
    free: Mutex<Vec<QualityPool>>,
}

impl PoolBank {
    /// A bank pre-warmed with one workspace, so the sequential serving
    /// path (one query at a time) never allocates after build.
    fn with(initial: QualityPool) -> Self {
        PoolBank {
            free: Mutex::new(vec![initial]),
        }
    }

    fn checkout(&self, graph: &Graph, threads: usize) -> QualityPool {
        let pooled = self.free.lock().expect("quality pool bank poisoned").pop();
        pooled.unwrap_or_else(|| QualityPool::new(graph, threads))
    }

    fn give_back(&self, pool: QualityPool) {
        let mut free = self.free.lock().expect("quality pool bank poisoned");
        if free.len() < MAX_POOLED_WORKSPACES {
            free.push(pool);
        }
    }
}

/// One cached `(partition, corpus)` pair of [`Session::track_partition`].
struct RepairSlot {
    strategy: Strategy,
    partition: Partition,
    corpus: ShortcutCorpus,
    config: RepairConfig,
}

impl std::fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("nodes", &self.graph.node_count())
            .field("edges", &self.graph.edge_count())
            .field("threads", &self.threads)
            .field("execution", &self.execution)
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

/// Result of a [`Session::shortcut`] (or one [`Session::batch`] entry):
/// the constructed shortcut plus its unified [`Report`].
#[derive(Debug, Clone)]
pub struct ShortcutRun {
    /// The constructed tree-restricted shortcut.
    pub shortcut: TreeShortcut,
    /// The unified query report. Construction queries always record at
    /// least one [`Attempt`]; batch entries additionally fill
    /// [`Report::quality`].
    pub report: Report,
}

impl ShortcutRun {
    /// The `(congestion, block)` guess of the successful attempt, `None`
    /// if the construction did not succeed.
    pub fn winning_guess(&self) -> Option<(usize, usize)> {
        self.report
            .attempts
            .iter()
            .rev()
            .find(|a| a.succeeded)
            .map(|a| (a.congestion_guess, a.block_guess))
    }

    /// Total CONGEST rounds charged for the construction.
    pub fn total_rounds(&self) -> u64 {
        self.report.rounds_charged
    }
}

/// Result of a [`Session::verify`] query.
#[derive(Debug, Clone)]
pub struct VerifyRun {
    /// `good[p]` — part `p` has at most the threshold number of block
    /// components.
    pub good: Vec<bool>,
    /// Measured block-component count per part (0 for parts classified
    /// bad by the simulated protocol).
    pub block_counts: Vec<usize>,
    /// Per-round simulator trace (`Simulated` execution with
    /// [`Pipeline::trace`] enabled; empty otherwise).
    pub trace: Vec<RoundTrace>,
    /// The unified query report (`rounds_executed` and `sim` are filled in
    /// `Simulated` mode).
    pub report: Report,
}

/// Result of a [`Session::track_partition`] / [`Session::update_partition`]
/// repair query: the assembled shortcut and quality for the (post-delta)
/// partition plus the repair accounting.
#[derive(Debug, Clone)]
pub struct RepairRun {
    /// The shortcut for the current partition, assembled from the cached
    /// corpus — byte-identical to rebuilding every part from scratch.
    pub shortcut: TreeShortcut,
    /// Aggregated quality, re-aggregated from the cached per-part
    /// measurements (exact congestion subtract/add, no recount).
    pub quality: ShortcutQuality,
    /// `good[p]` — part `p` verified good within its attempt budget.
    pub good: Vec<bool>,
    /// Parts (re)built by scoped construction runs.
    pub repaired_parts: usize,
    /// Parts whose cached state was reused verbatim.
    pub reused_parts: usize,
    /// The unified query report; `rounds_charged` counts only the rounds
    /// of the (re)built parts, and `metrics` records
    /// `repaired_parts` / `reused_parts`.
    pub report: Report,
}

/// An immutable snapshot of a tracked partition and its customization
/// corpus, detached from the session cache — the borrowed input of a
/// [`crate::Query::Repair`], so serving a repair is a pure function of
/// `(baseline, delta)` and leaves the session's own tracked state alone.
#[derive(Debug, Clone)]
pub struct RepairBaseline {
    strategy: Strategy,
    partition: Partition,
    corpus: ShortcutCorpus,
    config: RepairConfig,
}

impl RepairBaseline {
    /// The tracked partition deltas apply to.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The strategy the corpus was built under.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }
}

/// Result of a [`Session::mst`] query.
#[derive(Debug, Clone)]
pub struct MstRun {
    /// The MST edges, sorted by edge id.
    pub edges: Vec<EdgeId>,
    /// Total weight of the returned edges.
    pub weight: u64,
    /// Number of Boruvka phases executed.
    pub phases: usize,
    /// Exact round cost, broken down per phase and per step.
    pub cost: RoundCost,
    /// The unified query report (`metrics` records `phases` and `weight`).
    pub report: Report,
}

impl<'g> Session<'g> {
    /// The graph the session serves.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The spanning tree every tree-restricted query routes over.
    pub fn tree(&self) -> &RootedTree {
        &self.tree
    }

    /// The resolved worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The contiguous shard layout `Simulated` queries execute on (one
    /// shard per worker thread, volume-balanced). This is introspection
    /// state: the sharded engine derives the identical
    /// [`ShardMap::by_volume`] layout internally for each run (and the
    /// serial engine does not shard at all); the session's copy lets
    /// callers inspect the layout without running a protocol.
    pub fn shard_map(&self) -> &ShardMap {
        &self.shards
    }

    /// The execution mode queries currently run under.
    pub fn execution(&self) -> ExecutionMode {
        self.execution
    }

    /// Switches the execution mode for subsequent queries.
    ///
    /// Changing the mode drops any tracked partitions
    /// ([`Session::track_partition`]): a cached corpus records how its
    /// parts were built under the old mode, so repairing it under a new
    /// one would no longer equal a from-scratch rebuild. A subsequent
    /// [`Session::update_partition`] reports the usual typed
    /// [`LcsError::Config`] "no tracked partition" error until the caller
    /// tracks again. Setting the mode already in effect changes nothing.
    pub fn set_execution(&mut self, execution: ExecutionMode) {
        if self.execution != execution {
            self.execution = execution;
            self.repair_cache.clear();
        }
    }

    /// The random seed subsequent queries use.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Replaces the seed for subsequent queries.
    ///
    /// Changing the seed drops any tracked partitions
    /// ([`Session::track_partition`]): per-part construction seeds derive
    /// from the session seed, so a corpus built under the old seed would
    /// silently stop satisfying the repair == rebuild contract. A
    /// subsequent [`Session::update_partition`] reports the usual typed
    /// [`LcsError::Config`] "no tracked partition" error until the caller
    /// tracks again. Setting the seed already in effect changes nothing.
    pub fn set_seed(&mut self, seed: u64) {
        if self.seed != seed {
            self.seed = seed;
            self.repair_cache.clear();
        }
    }

    /// The simulator configuration `Simulated` queries run with.
    pub fn sim_config(&self) -> SimConfig {
        self.sim_config
    }

    /// The instrumentation handle queries report through (off unless
    /// [`Pipeline::recorder`] attached one).
    pub fn recorder(&self) -> &Obs {
        &self.obs
    }

    fn check_partition(&self, partition: &Partition) -> Result<()> {
        if partition.node_count() != self.graph.node_count() {
            return Err(LcsError::InconsistentInputs {
                reason: format!(
                    "partition defined over {} nodes but the session's graph has {}",
                    partition.node_count(),
                    self.graph.node_count()
                ),
            });
        }
        Ok(())
    }

    /// Runs the Theorem 3 driver once with the session's execution mode:
    /// `Scheduled` uses the centralized Lemma 3 verification, `Simulated`
    /// drops in the message-passing block counting with the session's
    /// simulator configuration (threads and tracing included).
    fn run_find_shortcut(
        &self,
        partition: &Partition,
        config: FindShortcutConfig,
    ) -> Result<FindShortcutResult> {
        let driver = FindShortcut::new(config);
        let result = match self.execution {
            ExecutionMode::Scheduled => driver.run_with_verifier(
                self.graph,
                &self.tree,
                partition,
                |g, t, p, s, threshold, active| Ok(verification(g, t, p, s, threshold, active)),
            ),
            ExecutionMode::Simulated => {
                // Construction attempts run fault-free even when the
                // session injects faults into `verify`: the doubling search
                // interprets a failed verification as "guess too small",
                // which a fault-induced stall would corrupt.
                let sim_config = self.sim_config.without_fault();
                let obs = self.obs.clone();
                driver.run_with_verifier(
                    self.graph,
                    &self.tree,
                    partition,
                    move |g, t, p, s, threshold, active| {
                        let outcome = verification_simulated_obs(
                            g,
                            t,
                            p,
                            s,
                            threshold,
                            active,
                            Some(sim_config),
                            &obs,
                        )
                        .map_err(lcs_core::CoreError::from)?;
                        Ok(outcome.outcome)
                    },
                )
            }
        };
        result.map_err(LcsError::from)
    }

    /// Constructs a tree-restricted shortcut for `partition` with the
    /// given [`Strategy`]. The session's tree, seed and execution mode
    /// apply; no per-graph state is allocated.
    ///
    /// # Errors
    ///
    /// [`LcsError::InconsistentInputs`] for a partition over a different
    /// node count, [`LcsError::BudgetExhausted`] when a doubling search
    /// ([`Strategy::Doubling`] / [`Strategy::SlowCore`]) exhausts its
    /// doubling budget, and simulation errors from `Simulated` execution.
    /// A [`Strategy::Fixed`] run whose parameters turn out too small is
    /// *not* an error (mirroring the legacy driver): it returns `Ok` with
    /// [`Report::all_parts_good`] `false` and the partial shortcut.
    pub fn shortcut(&self, partition: &Partition, strategy: Strategy) -> Result<ShortcutRun> {
        self.check_partition(partition)?;
        let start = Instant::now();
        let mut report = Report::new("shortcut");
        report.strategy = Some(strategy.label().to_string());

        let (initial, use_fast_core, max_doublings) = match strategy {
            Strategy::Doubling(spec) => (
                (spec.initial_congestion, spec.initial_block),
                true,
                spec.max_doublings,
            ),
            Strategy::SlowCore(spec) => (
                (spec.initial_congestion, spec.initial_block),
                false,
                spec.max_doublings,
            ),
            Strategy::Fixed { congestion, block } => {
                // A single attempt at the known parameters; the iteration
                // budget of the driver itself still applies.
                let config = FindShortcutConfig::new(congestion, block).with_seed(self.seed);
                let result = self.run_find_shortcut(partition, config)?;
                report.attempts.push(Attempt {
                    congestion_guess: congestion,
                    block_guess: block,
                    succeeded: result.all_parts_good,
                    rounds: result.total_rounds(),
                });
                report.iterations = result.iterations;
                report.all_parts_good = result.all_parts_good;
                report.rounds_charged = result.total_rounds();
                report.wall_millis = start.elapsed().as_secs_f64() * 1e3;
                return Ok(ShortcutRun {
                    shortcut: result.shortcut,
                    report,
                });
            }
        };

        // The Appendix A doubling loop, attempt seeds identical to the
        // legacy `doubling_search` (`seed + attempt · 7919`).
        let mut congestion = initial.0.max(1);
        let mut block = initial.1.max(1);
        for attempt_index in 0..=max_doublings {
            let mut config = FindShortcutConfig::new(congestion, block)
                .with_seed(self.seed.wrapping_add(attempt_index as u64 * 7919));
            if !use_fast_core {
                config = config.with_slow_core();
            }
            let result = self.run_find_shortcut(partition, config)?;
            report.attempts.push(Attempt {
                congestion_guess: congestion,
                block_guess: block,
                succeeded: result.all_parts_good,
                rounds: result.total_rounds(),
            });
            report.rounds_charged += result.total_rounds();
            if result.all_parts_good {
                report.iterations = result.iterations;
                report.all_parts_good = true;
                report.wall_millis = start.elapsed().as_secs_f64() * 1e3;
                return Ok(ShortcutRun {
                    shortcut: result.shortcut,
                    report,
                });
            }
            congestion = congestion.saturating_mul(2);
            block = block.saturating_mul(2);
        }
        Err(LcsError::BudgetExhausted {
            iterations: report.attempts.len(),
            remaining_bad: partition.part_count(),
        })
    }

    /// Measures congestion, dilation and block parameter of `shortcut`
    /// against `partition`, checking a quality workspace out of the
    /// session's pool bank (no allocation on the warm sequential path).
    /// The values are identical for every thread count and for any number
    /// of concurrent callers.
    ///
    /// # Errors
    ///
    /// [`LcsError::InconsistentInputs`] for a partition over a different
    /// node count.
    pub fn quality(
        &self,
        shortcut: &TreeShortcut,
        partition: &Partition,
    ) -> Result<ShortcutQuality> {
        self.check_partition(partition)?;
        Ok(self.with_pool(|pool| shortcut.quality_with(self.graph, partition, pool)))
    }

    /// Checks a quality workspace out of the bank, runs `f` with
    /// exclusive access to it, and returns it. Workspaces are
    /// epoch-stamped, so pool identity never affects measured values —
    /// the property that lets `&self` queries share one session across
    /// threads while staying byte-identical to the sequential path.
    fn with_pool<R>(&self, f: impl FnOnce(&mut QualityPool) -> R) -> R {
        let mut pool = self.pool.checkout(self.graph, self.threads);
        let result = f(&mut pool);
        self.pool.give_back(pool);
        result
    }

    /// Classifies every part of `partition` against `threshold` block
    /// components (the Lemma 3 verification): `Scheduled` execution charges
    /// the exact centralized schedule, `Simulated` runs the distributed
    /// counting protocol and fills [`Report::sim`] /
    /// [`Report::rounds_executed`].
    ///
    /// With a [`Pipeline::fault`] plan and `Simulated` execution, the
    /// query runs the self-healing retry wrapper
    /// ([`lcs_dist::verification_with_retry`]): stalled epochs are retried
    /// per the session's [`Pipeline::retry`] policy, and the report gains
    /// `retry_epochs` / `retry_stalls` metrics.
    ///
    /// # Errors
    ///
    /// [`LcsError::InconsistentInputs`] for a mismatched partition;
    /// simulation errors in `Simulated` mode; [`LcsError::Degraded`] when
    /// an injected fault plan defeats every retry epoch.
    pub fn verify(
        &self,
        shortcut: &TreeShortcut,
        partition: &Partition,
        threshold: usize,
    ) -> Result<VerifyRun> {
        self.check_partition(partition)?;
        let start = Instant::now();
        let mut report = Report::new("verify");
        let active = vec![true; partition.part_count()];
        match self.execution {
            ExecutionMode::Scheduled => {
                let outcome = verification(
                    self.graph, &self.tree, partition, shortcut, threshold, &active,
                );
                report.all_parts_good = outcome.good.iter().all(|&g| g);
                report.rounds_charged = outcome.rounds;
                report.wall_millis = start.elapsed().as_secs_f64() * 1e3;
                Ok(VerifyRun {
                    good: outcome.good,
                    block_counts: outcome.block_counts,
                    trace: Vec::new(),
                    report,
                })
            }
            ExecutionMode::Simulated => {
                // With an active fault plan the self-healing retry wrapper
                // runs instead of a single-shot verification: a decisive
                // result surfaces normally (with the epoch/stall counts as
                // report metrics), an exhausted retry budget surfaces as a
                // typed degraded error rather than a wrong classification.
                let ver = if self.sim_config.active_fault().is_some() {
                    let healed = verification_with_retry(
                        self.graph,
                        &self.tree,
                        partition,
                        shortcut,
                        threshold,
                        &active,
                        Some(self.sim_config),
                        self.retry,
                        &self.obs,
                    )?;
                    if !healed.decisive {
                        return Err(LcsError::Degraded {
                            epochs: healed.epochs,
                            stalls: healed.stalls,
                            reason: format!(
                                "fault-injected verification stayed indecisive after {} epochs",
                                healed.epochs
                            ),
                        });
                    }
                    report
                        .metrics
                        .push(("retry_epochs".to_string(), u64::from(healed.epochs)));
                    report
                        .metrics
                        .push(("retry_stalls".to_string(), u64::from(healed.stalls)));
                    healed.outcome.expect("decisive retries carry an outcome")
                } else {
                    verification_simulated_obs(
                        self.graph,
                        &self.tree,
                        partition,
                        shortcut,
                        threshold,
                        &active,
                        Some(self.sim_config),
                        &self.obs,
                    )?
                };
                report.all_parts_good = ver.outcome.good.iter().all(|&g| g);
                report.rounds_charged = ver.outcome.rounds;
                report.rounds_executed = Some(ver.stats.rounds);
                report.sim = Some(ver.stats);
                report.wall_millis = start.elapsed().as_secs_f64() * 1e3;
                Ok(VerifyRun {
                    good: ver.outcome.good,
                    block_counts: ver.outcome.block_counts,
                    trace: ver.trace,
                    report,
                })
            }
        }
    }

    /// Runs one core subroutine step (Lemma 5 / Lemma 7) on all parts with
    /// congestion parameter `congestion` — the building block the
    /// construction experiments compare. `Fast` uses the session seed and
    /// the legacy sampling constant `γ = 2`.
    ///
    /// # Errors
    ///
    /// [`LcsError::InconsistentInputs`] for a mismatched partition.
    pub fn core(
        &self,
        partition: &Partition,
        kind: CoreKind,
        congestion: usize,
    ) -> Result<CoreOutcome> {
        self.check_partition(partition)?;
        let active = vec![true; partition.part_count()];
        Ok(match kind {
            CoreKind::Slow => core_slow(self.graph, &self.tree, partition, congestion, &active),
            CoreKind::Fast => core_fast(
                self.graph,
                &self.tree,
                partition,
                &CoreFastConfig::new(congestion).with_seed(self.seed),
                &active,
            ),
        })
    }

    /// Runs distributed Boruvka MST (Lemma 4) over the session's graph
    /// with the given per-phase shortcut strategy, the session's seed and
    /// execution mode, and the session's simulator configuration for
    /// `Simulated` phases.
    ///
    /// # Errors
    ///
    /// Propagates construction errors and reports
    /// [`LcsError::BudgetExhausted`] if the phase cap is hit.
    pub fn mst(&self, weights: &EdgeWeights, strategy: ShortcutStrategy) -> Result<MstRun> {
        let start = Instant::now();
        #[allow(deprecated)]
        let config = lcs_mst::BoruvkaConfig::new(strategy)
            .with_seed(self.seed)
            .with_execution(self.execution)
            .with_sim_config(self.sim_config.without_fault());
        #[allow(deprecated)]
        let outcome = lcs_mst::boruvka_mst(self.graph, weights, &config)?;
        let mut report = Report::new("mst");
        report.strategy = Some(format!("{strategy:?}"));
        report.all_parts_good = true;
        report.rounds_charged = outcome.total_rounds();
        report
            .metrics
            .push(("phases".to_string(), outcome.phases as u64));
        report.metrics.push(("weight".to_string(), outcome.weight));
        report.wall_millis = start.elapsed().as_secs_f64() * 1e3;
        Ok(MstRun {
            edges: outcome.edges,
            weight: outcome.weight,
            phases: outcome.phases,
            cost: outcome.cost,
            report,
        })
    }

    /// Serves a batch of shortcut queries — one per partition, all with
    /// the same strategy — reusing the session's workspaces across the
    /// whole slice and measuring each result's quality into its report.
    /// Equivalent to calling [`Session::shortcut`] then
    /// [`Session::quality`] per partition (the batch does not advance the
    /// seed between entries), just without any per-query setup.
    ///
    /// # Errors
    ///
    /// An empty `partitions` slice is a configuration error
    /// ([`LcsError::Config`]) — a batch with nothing to serve is always a
    /// caller bug, and surfacing it beats silently returning an empty
    /// `Vec`. Otherwise fails on the first query that fails, with that
    /// query's error.
    pub fn batch(&self, partitions: &[&Partition], strategy: Strategy) -> Result<Vec<ShortcutRun>> {
        if partitions.is_empty() {
            return Err(LcsError::Config {
                reason: "batch requires at least one partition (got an empty query list)"
                    .to_string(),
            });
        }
        // A cloned handle (refcount bump) so the span guard doesn't hold a
        // borrow of `self` across the `&mut self` query calls.
        let obs = self.obs.clone();
        if obs.is_on() {
            obs.counter_add("session/batch/calls", 1);
            obs.counter_add("session/batch/queries", partitions.len() as u64);
        }
        let _span = lcs_obs::span!(obs, "session/batch");
        let mut runs = Vec::with_capacity(partitions.len());
        for &partition in partitions {
            let mut run = self.shortcut(partition, strategy)?;
            run.report.quality = Some(self.quality(&run.shortcut, partition)?);
            runs.push(run);
        }
        Ok(runs)
    }

    /// Maps a construction [`Strategy`] onto the part-scoped doubling
    /// search: `Fixed` becomes a single attempt (a still-bad part is not
    /// an error, mirroring [`Session::shortcut`]); the doubling strategies
    /// keep their budgets and escalate a still-bad part to
    /// [`LcsError::BudgetExhausted`].
    fn repair_config_of(&self, strategy: Strategy) -> (RepairConfig, bool) {
        match strategy {
            Strategy::Doubling(spec) => (
                RepairConfig {
                    congestion: spec.initial_congestion,
                    block: spec.initial_block,
                    use_fast_core: true,
                    max_doublings: spec.max_doublings,
                    seed: self.seed,
                },
                true,
            ),
            Strategy::SlowCore(spec) => (
                RepairConfig {
                    congestion: spec.initial_congestion,
                    block: spec.initial_block,
                    use_fast_core: false,
                    max_doublings: spec.max_doublings,
                    seed: self.seed,
                },
                true,
            ),
            Strategy::Fixed { congestion, block } => (
                RepairConfig {
                    congestion,
                    block,
                    use_fast_core: true,
                    max_doublings: 0,
                    seed: self.seed,
                },
                false,
            ),
        }
    }

    /// Builds the full customization corpus for `partition` with the
    /// session's execution mode (same verification seam as
    /// [`Session::shortcut`]; `Simulated` runs the restricted-part-set
    /// verification entry, fault-free).
    fn build_corpus_dispatch(
        &self,
        partition: &Partition,
        config: &RepairConfig,
    ) -> Result<ShortcutCorpus> {
        let result = self.with_pool(|pool| match self.execution {
            ExecutionMode::Scheduled => build_corpus(
                self.graph,
                &self.tree,
                partition,
                config,
                pool,
                |g, t, p, s, threshold, active| Ok(verification(g, t, p, s, threshold, active)),
            ),
            ExecutionMode::Simulated => {
                let sim_config = self.sim_config.without_fault();
                let obs = self.obs.clone();
                build_corpus(
                    self.graph,
                    &self.tree,
                    partition,
                    config,
                    pool,
                    move |g, t, p, s, threshold, active| {
                        let outcome =
                            simulated_parts(g, t, p, s, threshold, active, sim_config, &obs)?;
                        Ok(outcome)
                    },
                )
            }
        });
        result.map_err(LcsError::from)
    }

    /// Repairs `prev` into a corpus for `partition` (the dirty parts of a
    /// delta closure are rebuilt, everything else reused) with the
    /// session's execution mode.
    #[allow(clippy::too_many_arguments)]
    fn repair_corpus_dispatch(
        &self,
        partition: &Partition,
        prev: &ShortcutCorpus,
        origin: &[Option<PartId>],
        dirty: &PartSet,
        config: &RepairConfig,
    ) -> Result<(ShortcutCorpus, RepairStats)> {
        let result = self.with_pool(|pool| match self.execution {
            ExecutionMode::Scheduled => repair_corpus(
                self.graph,
                &self.tree,
                partition,
                prev,
                origin,
                dirty,
                config,
                pool,
                |g, t, p, s, threshold, active| Ok(verification(g, t, p, s, threshold, active)),
            ),
            ExecutionMode::Simulated => {
                let sim_config = self.sim_config.without_fault();
                let obs = self.obs.clone();
                repair_corpus(
                    self.graph,
                    &self.tree,
                    partition,
                    prev,
                    origin,
                    dirty,
                    config,
                    pool,
                    move |g, t, p, s, threshold, active| {
                        let outcome =
                            simulated_parts(g, t, p, s, threshold, active, sim_config, &obs)?;
                        Ok(outcome)
                    },
                )
            }
        });
        result.map_err(LcsError::from)
    }

    /// Assembles a [`RepairRun`] from a finished corpus.
    fn finish_repair(
        &self,
        partition: &Partition,
        corpus: &ShortcutCorpus,
        stats: RepairStats,
        strategy: Strategy,
        operation: &str,
        start: Instant,
    ) -> Result<RepairRun> {
        let shortcut = corpus
            .assemble(self.graph, &self.tree, partition)
            .map_err(LcsError::from)?;
        let quality = corpus.quality();
        let good: Vec<bool> = corpus.parts().iter().map(|p| p.good).collect();
        let mut report = Report::new(operation);
        report.strategy = Some(strategy.label().to_string());
        report.all_parts_good = corpus.all_good();
        report.rounds_charged = stats.rounds;
        report.iterations = corpus.parts().iter().map(|p| p.attempts).max().unwrap_or(0);
        report
            .metrics
            .push(("repaired_parts".to_string(), stats.repaired_parts as u64));
        report
            .metrics
            .push(("reused_parts".to_string(), stats.reused_parts as u64));
        report.wall_millis = start.elapsed().as_secs_f64() * 1e3;
        Ok(RepairRun {
            shortcut,
            quality,
            good,
            repaired_parts: stats.repaired_parts,
            reused_parts: stats.reused_parts,
            report,
        })
    }

    /// The shared delta-repair path of [`Session::update_partition`] and
    /// [`Session::repair_from`]: apply the delta, repair the corpus, and
    /// report — with the `session/repair` span, the repair counters and
    /// the per-repair latency timer around it.
    fn repair_with(
        &self,
        partition: &Partition,
        corpus: &ShortcutCorpus,
        config: &RepairConfig,
        strategy: Strategy,
        delta: &PartitionDelta,
    ) -> Result<(Partition, ShortcutCorpus, RepairRun)> {
        let obs = self.obs.clone();
        let _span = lcs_obs::span!(obs, "session/repair");
        let start = Instant::now();
        let applied = partition.apply_tracked(self.graph, delta)?;
        let (new_corpus, stats) = self.repair_corpus_dispatch(
            &applied.partition,
            corpus,
            &applied.origin,
            &applied.dirty,
            config,
        )?;
        let budget_is_error = !matches!(strategy, Strategy::Fixed { .. });
        if budget_is_error && !new_corpus.all_good() {
            return Err(LcsError::BudgetExhausted {
                iterations: new_corpus
                    .parts()
                    .iter()
                    .map(|p| p.attempts)
                    .max()
                    .unwrap_or(0),
                remaining_bad: new_corpus.parts().iter().filter(|p| !p.good).count(),
            });
        }
        let run = self.finish_repair(
            &applied.partition,
            &new_corpus,
            stats,
            strategy,
            "repair",
            start,
        )?;
        if obs.is_on() {
            obs.counter_add("session/repairs", 1);
            obs.counter_add("session/repaired_parts", stats.repaired_parts as u64);
            obs.counter_add("session/reused_parts", stats.reused_parts as u64);
            obs.timer_record("session/repair/latency", start.elapsed().as_nanos() as u64);
        }
        Ok((applied.partition, new_corpus, run))
    }

    /// Builds and caches the customization corpus for `partition`: every
    /// part constructed through the part-scoped path (per-part doubling
    /// search, seeds anchored at each part's minimum member). Subsequent
    /// [`Session::update_partition`] calls repair this cached state
    /// instead of rebuilding from scratch. One slot is kept per strategy
    /// label; tracking again under the same strategy replaces the slot.
    ///
    /// # Errors
    ///
    /// [`LcsError::InconsistentInputs`] for a partition over a different
    /// node count; [`LcsError::BudgetExhausted`] when a doubling strategy
    /// exhausts its budget on some part (a [`Strategy::Fixed`] run whose
    /// parameters are too small is not an error, mirroring
    /// [`Session::shortcut`]); simulation errors in `Simulated` mode.
    pub fn track_partition(
        &mut self,
        partition: &Partition,
        strategy: Strategy,
    ) -> Result<RepairRun> {
        self.check_partition(partition)?;
        let start = Instant::now();
        let (config, budget_is_error) = self.repair_config_of(strategy);
        let corpus = self.build_corpus_dispatch(partition, &config)?;
        if budget_is_error && !corpus.all_good() {
            return Err(LcsError::BudgetExhausted {
                iterations: corpus.parts().iter().map(|p| p.attempts).max().unwrap_or(0),
                remaining_bad: corpus.parts().iter().filter(|p| !p.good).count(),
            });
        }
        let stats = RepairStats {
            repaired_parts: partition.part_count(),
            reused_parts: 0,
            rounds: corpus.total_rounds(),
        };
        let run = self.finish_repair(partition, &corpus, stats, strategy, "track", start)?;
        self.repair_cache
            .retain(|slot| slot.strategy.label() != strategy.label());
        self.repair_cache.push(RepairSlot {
            strategy,
            partition: partition.clone(),
            corpus,
            config,
        });
        Ok(run)
    }

    /// Applies `delta` to the most recently tracked partition and repairs
    /// the cached corpus in place: clean parts keep their block
    /// assignments, routing state and quality verbatim; only the delta's
    /// dirty closure is rebuilt, and congestion is re-aggregated by exact
    /// subtraction. The result is byte-identical to
    /// [`Session::track_partition`] on the post-delta partition — at the
    /// cost of the dirty volume, not `n`.
    ///
    /// # Errors
    ///
    /// [`LcsError::Config`] if no partition is tracked or the delta is
    /// structurally invalid (including any op that would empty a part);
    /// [`LcsError::BudgetExhausted`] when a doubling strategy exhausts its
    /// budget on a rebuilt part; simulation errors in `Simulated` mode.
    /// The cached state is left unchanged on any error.
    pub fn update_partition(&mut self, delta: &PartitionDelta) -> Result<RepairRun> {
        let mut slot = self.repair_cache.pop().ok_or_else(|| LcsError::Config {
            reason: "no tracked partition to update; call Session::track_partition first"
                .to_string(),
        })?;
        let outcome = self.repair_with(
            &slot.partition,
            &slot.corpus,
            &slot.config,
            slot.strategy,
            delta,
        );
        match outcome {
            Ok((partition, corpus, run)) => {
                slot.partition = partition;
                slot.corpus = corpus;
                self.repair_cache.push(slot);
                Ok(run)
            }
            Err(err) => {
                self.repair_cache.push(slot);
                Err(err)
            }
        }
    }

    /// Serves one repair against a detached [`RepairBaseline`] — a pure
    /// function of `(baseline, delta)` that leaves the session's own
    /// tracked state untouched. This is the entry behind
    /// [`crate::Query::Repair`], so a workload driver can replay the same
    /// pre-generated `(baseline, delta)` pairs any number of times and
    /// always observe the same result.
    ///
    /// # Errors
    ///
    /// Same as [`Session::update_partition`], minus the not-tracked case.
    pub fn repair_from(
        &self,
        baseline: &RepairBaseline,
        delta: &PartitionDelta,
    ) -> Result<RepairRun> {
        self.check_partition(&baseline.partition)?;
        let (_, _, run) = self.repair_with(
            &baseline.partition,
            &baseline.corpus,
            &baseline.config,
            baseline.strategy,
            delta,
        )?;
        Ok(run)
    }

    /// A detached snapshot of the most recently tracked partition and its
    /// corpus (see [`RepairBaseline`]); `None` until
    /// [`Session::track_partition`] succeeds.
    pub fn repair_baseline(&self) -> Option<RepairBaseline> {
        self.repair_cache.last().map(|slot| RepairBaseline {
            strategy: slot.strategy,
            partition: slot.partition.clone(),
            corpus: slot.corpus.clone(),
            config: slot.config,
        })
    }
}

/// The `Simulated` verification seam of the repair paths: builds the
/// restricted part set from the driver's active mask and runs the
/// message-passing block counting on exactly those parts.
#[allow(clippy::too_many_arguments)]
fn simulated_parts(
    g: &Graph,
    t: &RootedTree,
    p: &Partition,
    s: &TreeShortcut,
    threshold: usize,
    active: &[bool],
    sim_config: SimConfig,
    obs: &Obs,
) -> lcs_core::Result<lcs_core::construction::VerificationOutcome> {
    let mut parts = PartSet::new(p.part_count());
    for (i, &a) in active.iter().enumerate() {
        if a {
            parts.insert(PartId::new(i));
        }
    }
    let outcome =
        verification_simulated_parts(g, t, p, s, threshold, &parts, Some(sim_config), obs)
            .map_err(lcs_core::CoreError::from)?;
    Ok(outcome.outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DoublingSpec;
    use lcs_graph::{generators, NodeId};

    #[test]
    fn repair_probes_are_thread_invariant() {
        let graph = generators::grid(8, 8);
        let partition = generators::partitions::grid_columns(8, 8);
        let delta = PartitionDelta::new().move_nodes(vec![NodeId::new(1)], PartId::new(0));
        let mut facts = Vec::new();
        for threads in [1usize, 4] {
            let obs = lcs_obs::Obs::recording();
            let mut session = Pipeline::on(&graph)
                .seed(5)
                .threads(Threads::Fixed(threads))
                .recorder(obs.clone())
                .build()
                .unwrap();
            session
                .track_partition(&partition, Strategy::doubling())
                .unwrap();
            session.update_partition(&delta).unwrap();
            let snapshot = obs.snapshot();
            assert_eq!(snapshot.counter("session/repairs"), Some(1));
            // The per-repair latency timer and the repair span both
            // recorded exactly one sample.
            assert_eq!(snapshot.timer("session/repair/latency").unwrap().count(), 1);
            assert_eq!(snapshot.timer("session/repair").unwrap().count(), 1);
            facts.push((
                snapshot.counter("session/repairs"),
                snapshot.counter("session/repaired_parts"),
                snapshot.counter("session/reused_parts"),
            ));
        }
        // Counters are facts about the repair, identical at any engine
        // thread count.
        assert_eq!(facts[0], facts[1]);
        assert_eq!(facts[0].1, Some(2), "a boundary move dirties two parts");
    }

    #[test]
    fn sessions_are_shareable_across_threads() {
        // The compile-time half of the serving story: one warm session can
        // be borrowed by any number of server worker threads.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Session<'static>>();
    }

    #[test]
    fn set_seed_drops_the_tracked_corpus_instead_of_corrupting_repairs() {
        let g = generators::grid(8, 8);
        let p = generators::partitions::grid_columns(8, 8);
        let delta = PartitionDelta::new().move_nodes(vec![NodeId::new(1)], PartId::new(0));
        let mut session = Pipeline::on(&g).seed(5).build().unwrap();
        session.track_partition(&p, Strategy::doubling()).unwrap();

        // Per-part construction seeds derive from the session seed, so a
        // corpus tracked under seed 5 must not survive a switch to seed 6:
        // updating right away is the typed "no tracked partition" error,
        // not a silently-wrong repair.
        session.set_seed(6);
        let err = session.update_partition(&delta).unwrap_err();
        assert!(matches!(err, LcsError::Config { .. }));

        // Re-tracking under the new seed restores repair == rebuild.
        session.track_partition(&p, Strategy::doubling()).unwrap();
        let updated = session.update_partition(&delta).unwrap();
        let new_p = p.apply(&delta).unwrap();
        let mut fresh = Pipeline::on(&g).seed(6).build().unwrap();
        let rebuilt = fresh.track_partition(&new_p, Strategy::doubling()).unwrap();
        assert_eq!(updated.shortcut, rebuilt.shortcut);
        assert_eq!(updated.quality, rebuilt.quality);
        assert_eq!(updated.good, rebuilt.good);

        // Re-setting the values already in effect keeps the slot; an
        // execution-mode change drops it for the same reason a seed
        // change does.
        session.set_seed(6);
        session.set_execution(ExecutionMode::Scheduled);
        assert!(session.repair_baseline().is_some());
        session.set_execution(ExecutionMode::Simulated);
        assert!(session.repair_baseline().is_none());
    }

    #[test]
    fn build_rejects_bad_inputs() {
        let g = generators::grid(4, 4);
        let err = Pipeline::on(&g)
            .tree(TreeSpec::Bfs(NodeId::new(99)))
            .build()
            .unwrap_err();
        assert!(matches!(err, LcsError::Graph(_)));

        let err = Pipeline::on(&g)
            .threads(Threads::Fixed(0))
            .build()
            .unwrap_err();
        assert!(matches!(err, LcsError::Config { .. }));

        let other = generators::grid(3, 3);
        let err = Pipeline::on(&g)
            .tree(TreeSpec::Provided(RootedTree::bfs(&other, NodeId::new(0))))
            .build()
            .unwrap_err();
        assert!(matches!(err, LcsError::InconsistentInputs { .. }));

        let disconnected = Graph::from_edges(3, &[(NodeId::new(0), NodeId::new(1))]).unwrap();
        let err = Pipeline::on(&disconnected).build().unwrap_err();
        assert!(matches!(err, LcsError::InconsistentInputs { .. }));
    }

    #[test]
    fn queries_reject_a_mismatched_partition() {
        let g = generators::grid(4, 4);
        let p_other = generators::partitions::grid_columns(3, 3);
        let session = Pipeline::on(&g).build().unwrap();
        let err = session
            .shortcut(&p_other, Strategy::doubling())
            .unwrap_err();
        assert!(matches!(err, LcsError::InconsistentInputs { .. }));
        let empty = TreeShortcut::empty(&g, &generators::partitions::grid_columns(4, 4));
        assert!(session.quality(&empty, &p_other).is_err());
        assert!(session.verify(&empty, &p_other, 1).is_err());
    }

    #[test]
    fn doubling_budget_exhaustion_maps_to_the_unified_error() {
        let (g, layout) = generators::lower_bound_graph(8, 16);
        let p = generators::partitions::lower_bound_paths(&layout);
        let session = Pipeline::on(&g)
            .tree(TreeSpec::Bfs(layout.connector(0)))
            .build()
            .unwrap();
        let err = session
            .shortcut(
                &p,
                Strategy::Doubling(DoublingSpec {
                    max_doublings: 0,
                    ..DoublingSpec::default()
                }),
            )
            .unwrap_err();
        assert!(matches!(err, LcsError::BudgetExhausted { .. }));
    }

    #[test]
    fn session_accessors_expose_the_cached_state() {
        let g = generators::grid(6, 6);
        let mut session = Pipeline::on(&g)
            .threads(Threads::Fixed(3))
            .seed(7)
            .build()
            .unwrap();
        assert_eq!(session.threads(), 3);
        assert_eq!(session.shard_map().shard_count(), 3);
        assert_eq!(session.tree().node_count(), g.node_count());
        assert_eq!(session.seed(), 7);
        assert_eq!(session.execution(), ExecutionMode::Scheduled);
        assert_eq!(session.sim_config().threads, 3);
        session.set_seed(9);
        session.set_execution(ExecutionMode::Simulated);
        assert_eq!(session.seed(), 9);
        assert_eq!(session.execution(), ExecutionMode::Simulated);
    }

    #[test]
    fn fixed_strategy_records_a_single_attempt() {
        let g = generators::wheel(33);
        let p = generators::partitions::wheel_arcs(33, 4);
        let session = Pipeline::on(&g).build().unwrap();
        let run = session
            .shortcut(
                &p,
                Strategy::Fixed {
                    congestion: 1,
                    block: 1,
                },
            )
            .unwrap();
        assert_eq!(run.report.attempts.len(), 1);
        assert_eq!(run.winning_guess(), Some((1, 1)));
        assert!(run.report.all_parts_good);
        assert_eq!(run.total_rounds(), run.report.rounds_charged);
        assert_eq!(run.report.strategy.as_deref(), Some("fixed"));
    }

    #[test]
    fn slow_core_strategy_is_deterministic_across_seeds() {
        let g = generators::grid(5, 5);
        let p = generators::partitions::grid_columns(5, 5);
        let a = Pipeline::on(&g).seed(1).build().unwrap();
        let b = Pipeline::on(&g).seed(99).build().unwrap();
        let run_a = a.shortcut(&p, Strategy::slow_core()).unwrap();
        let run_b = b.shortcut(&p, Strategy::slow_core()).unwrap();
        assert_eq!(run_a.shortcut, run_b.shortcut);
    }

    #[test]
    fn verify_simulated_fills_sim_stats_and_trace() {
        let g = generators::grid(5, 5);
        let p = generators::partitions::grid_columns(5, 5);
        let session = Pipeline::on(&g)
            .execution(ExecutionMode::Simulated)
            .trace(true)
            .build()
            .unwrap();
        let run = session.shortcut(&p, Strategy::doubling()).unwrap();
        let guess = run.winning_guess().unwrap();
        let ver = session.verify(&run.shortcut, &p, 3 * guess.1).unwrap();
        assert!(ver.report.all_parts_good);
        let stats = ver.report.sim.expect("simulated verify records stats");
        assert!(stats.rounds > 0);
        assert_eq!(ver.report.rounds_executed, Some(stats.rounds));
        assert!(!ver.trace.is_empty(), "tracing was enabled");
        assert_eq!(
            ver.trace.iter().map(|t| t.messages).sum::<u64>(),
            stats.messages
        );
    }

    #[test]
    fn fault_injected_verify_heals_to_the_fault_free_classification() {
        let g = generators::grid(6, 6);
        let p = generators::partitions::grid_columns(6, 6);
        let plain = Pipeline::on(&g)
            .execution(ExecutionMode::Simulated)
            .build()
            .unwrap();
        let run = plain.shortcut(&p, Strategy::doubling()).unwrap();
        let threshold = 3 * run.winning_guess().unwrap().1;
        let want = plain.verify(&run.shortcut, &p, threshold).unwrap();

        let faulty = Pipeline::on(&g)
            .execution(ExecutionMode::Simulated)
            .fault(FaultPlan::new(5).with_latency(1).with_loss_ppm(10_000))
            .build()
            .unwrap();
        let healed = faulty.verify(&run.shortcut, &p, threshold).unwrap();
        assert_eq!(healed.good, want.good);
        assert_eq!(healed.block_counts, want.block_counts);
        assert!(healed
            .report
            .metrics
            .iter()
            .any(|(k, _)| k == "retry_epochs"));
        // The construction itself ran fault-free: identical to the plain
        // session's result because `shortcut` strips the plan.
        let run_faulty = faulty.shortcut(&p, Strategy::doubling()).unwrap();
        assert_eq!(run_faulty.shortcut, run.shortcut);
    }

    #[test]
    fn a_defeating_fault_plan_surfaces_as_a_typed_degraded_error() {
        let g = generators::grid(5, 5);
        let p = generators::partitions::grid_columns(5, 5);
        let session = Pipeline::on(&g)
            .execution(ExecutionMode::Simulated)
            .fault(FaultPlan::new(7).with_crashes(1, 0, 0))
            .retry(RetryPolicy {
                max_epochs: 2,
                timeout_factor: 2,
                backoff: 1,
            })
            .build()
            .unwrap();
        let empty = TreeShortcut::empty(&g, &p);
        let err = session.verify(&empty, &p, 5).unwrap_err();
        assert!(
            matches!(
                err,
                LcsError::Degraded {
                    epochs: 2,
                    stalls: 2,
                    ..
                }
            ),
            "a permanent crash must degrade, got: {err}"
        );
    }

    #[test]
    fn update_partition_matches_a_fresh_track() {
        let g = generators::grid(8, 8);
        let p = generators::partitions::grid_columns(8, 8);
        let mut session = Pipeline::on(&g).seed(5).build().unwrap();
        let tracked = session.track_partition(&p, Strategy::doubling()).unwrap();
        assert!(tracked.report.all_parts_good);
        assert_eq!(tracked.repaired_parts, p.part_count());
        assert_eq!(tracked.reused_parts, 0);
        assert_eq!(
            tracked.quality,
            session.quality(&tracked.shortcut, &p).unwrap()
        );

        let delta = PartitionDelta::new().move_nodes(vec![NodeId::new(1)], PartId::new(0));
        let updated = session.update_partition(&delta).unwrap();
        let new_p = p.apply(&delta).unwrap();
        let mut fresh = Pipeline::on(&g).seed(5).build().unwrap();
        let rebuilt = fresh.track_partition(&new_p, Strategy::doubling()).unwrap();
        assert_eq!(updated.shortcut, rebuilt.shortcut);
        assert_eq!(updated.quality, rebuilt.quality);
        assert_eq!(updated.good, rebuilt.good);
        assert_eq!(updated.repaired_parts, 2, "only the two edited columns");
        assert_eq!(
            updated.repaired_parts + updated.reused_parts,
            new_p.part_count()
        );
        assert!(updated.report.rounds_charged < tracked.report.rounds_charged);
    }

    #[test]
    fn update_without_track_is_a_config_error() {
        let g = generators::grid(4, 4);
        let mut session = Pipeline::on(&g).build().unwrap();
        let err = session
            .update_partition(&PartitionDelta::new())
            .unwrap_err();
        assert!(matches!(err, LcsError::Config { .. }));
    }

    #[test]
    fn a_failed_delta_leaves_the_tracked_state_usable() {
        let g = generators::grid(6, 6);
        let p = generators::partitions::grid_columns(6, 6);
        let mut session = Pipeline::on(&g).build().unwrap();
        session.track_partition(&p, Strategy::doubling()).unwrap();
        // Draining column 0 entirely must fail without corrupting the slot.
        let drain = PartitionDelta::new()
            .move_nodes((0..6).map(|r| NodeId::new(6 * r)).collect(), PartId::new(1));
        let err = session.update_partition(&drain).unwrap_err();
        assert!(matches!(err, LcsError::Config { .. }));
        let ok = session
            .update_partition(
                &PartitionDelta::new().move_nodes(vec![NodeId::new(0)], PartId::new(1)),
            )
            .unwrap();
        assert!(ok.report.all_parts_good);
    }

    #[test]
    fn repair_baselines_serve_purely_in_both_execution_modes() {
        let g = generators::grid(6, 6);
        let p = generators::partitions::grid_columns(6, 6);
        for execution in [ExecutionMode::Scheduled, ExecutionMode::Simulated] {
            let mut session = Pipeline::on(&g)
                .seed(3)
                .execution(execution)
                .build()
                .unwrap();
            assert!(session.repair_baseline().is_none());
            session.track_partition(&p, Strategy::doubling()).unwrap();
            let baseline = session.repair_baseline().unwrap();
            assert_eq!(baseline.partition(), &p);
            let delta = PartitionDelta::new().move_nodes(vec![NodeId::new(1)], PartId::new(0));
            let a = session.repair_from(&baseline, &delta).unwrap();
            let b = session.repair_from(&baseline, &delta).unwrap();
            assert_eq!(a.shortcut, b.shortcut);
            assert_eq!(a.quality, b.quality);
            // The session's own tracked state is untouched by serving.
            assert_eq!(session.repair_baseline().unwrap().partition(), &p);
        }
    }

    #[test]
    fn batch_rejects_an_empty_query_list() {
        let g = generators::grid(4, 4);
        let session = Pipeline::on(&g).build().unwrap();
        let err = session.batch(&[], Strategy::doubling()).unwrap_err();
        assert!(
            matches!(err, LcsError::Config { .. }),
            "empty batch must be a typed Config error, got: {err}"
        );
    }
}
