//! Builder-side configuration values of the façade: how the spanning tree
//! is obtained and which construction strategy a query runs.

use lcs_graph::{NodeId, RootedTree};

/// How a [`crate::Session`] obtains the rooted spanning tree every
/// tree-restricted query routes over.
#[derive(Debug, Clone)]
pub enum TreeSpec {
    /// Build a BFS spanning tree rooted at the given node (the `O(D)`
    /// preprocessing every paper construction starts from). The default is
    /// `Bfs(node 0)`.
    Bfs(NodeId),
    /// Use a caller-provided rooted spanning tree. It must span exactly the
    /// session's graph; [`crate::Pipeline::build`] rejects a mismatch.
    Provided(RootedTree),
}

impl Default for TreeSpec {
    fn default() -> Self {
        TreeSpec::Bfs(NodeId::new(0))
    }
}

/// Parameters of the Appendix A doubling search, as accepted by
/// [`Strategy::Doubling`]. `Default` mirrors the legacy
/// `DoublingConfig::new()`: start at `(1, 1)` with 24 doublings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoublingSpec {
    /// Initial congestion guess (doubled on failure, clamped to ≥ 1).
    pub initial_congestion: usize,
    /// Initial block-parameter guess (doubled on failure, clamped to ≥ 1).
    pub initial_block: usize,
    /// Maximum number of doublings before the query reports
    /// [`lcs_graph::LcsError::BudgetExhausted`].
    pub max_doublings: usize,
}

impl Default for DoublingSpec {
    fn default() -> Self {
        DoublingSpec {
            initial_congestion: 1,
            initial_block: 1,
            max_doublings: 24,
        }
    }
}

/// How a shortcut query constructs its tree-restricted shortcut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// The Appendix A doubling search over the randomized `CoreFast`
    /// subroutine: no parameters needed, `O(log(bc))` overhead. This is
    /// what a caller who knows nothing about the topology runs;
    /// [`Strategy::doubling`] is the all-defaults shorthand.
    Doubling(DoublingSpec),
    /// The Theorem 3 `FindShortcut` driver with known canonical parameters
    /// `(congestion, block)`.
    Fixed {
        /// The congestion `c` of the canonical shortcut assumed to exist.
        congestion: usize,
        /// The block parameter `b` of the canonical shortcut assumed to
        /// exist.
        block: usize,
    },
    /// The fully deterministic pipeline: the doubling search over the
    /// `CoreSlow` subroutine (Lemma 7), with the same starting guesses and
    /// budget knobs as [`Strategy::Doubling`]. Slower by a factor of
    /// roughly `c / log n` per attempt, but free of randomness — two runs
    /// with any seeds produce the identical shortcut.
    /// [`Strategy::slow_core`] is the all-defaults shorthand.
    SlowCore(DoublingSpec),
}

impl Strategy {
    /// The parameter-free default: [`Strategy::Doubling`] with
    /// [`DoublingSpec::default`].
    pub fn doubling() -> Self {
        Strategy::Doubling(DoublingSpec::default())
    }

    /// The parameter-free deterministic default: [`Strategy::SlowCore`]
    /// with [`DoublingSpec::default`].
    pub fn slow_core() -> Self {
        Strategy::SlowCore(DoublingSpec::default())
    }

    /// A short human-readable label for reports (`"doubling"`, `"fixed"`,
    /// `"slow-core"`).
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Doubling(_) => "doubling",
            Strategy::Fixed { .. } => "fixed",
            Strategy::SlowCore(_) => "slow-core",
        }
    }
}

/// Which core subroutine a [`crate::Session::core`] step runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreKind {
    /// `CoreSlow` (Algorithm 1 / Lemma 7): deterministic, `O(D·c)` rounds.
    Slow,
    /// `CoreFast` (Algorithm 2 / Lemma 5): sampled, `O(D log n + c)`
    /// rounds, good w.h.p. The sampling constant is the legacy default
    /// `γ = 2`; the seed is the session seed.
    Fast,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_mirror_the_legacy_configs() {
        let spec = DoublingSpec::default();
        assert_eq!(
            (
                spec.initial_congestion,
                spec.initial_block,
                spec.max_doublings
            ),
            (1, 1, 24)
        );
        assert!(matches!(TreeSpec::default(), TreeSpec::Bfs(root) if root == NodeId::new(0)));
        assert!(matches!(Strategy::doubling(), Strategy::Doubling(s) if s == spec));
    }

    #[test]
    fn strategy_labels() {
        assert_eq!(Strategy::doubling().label(), "doubling");
        assert_eq!(
            Strategy::Fixed {
                congestion: 2,
                block: 1
            }
            .label(),
            "fixed"
        );
        assert_eq!(Strategy::slow_core().label(), "slow-core");
        assert!(
            matches!(Strategy::slow_core(), Strategy::SlowCore(s) if s == DoublingSpec::default())
        );
    }
}
