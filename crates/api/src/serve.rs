//! The serving seam: one dispatchable [`Query`] shape plus a `Copy`
//! per-query record ([`Served`]), so workload drivers can time and
//! fingerprint thousands of queries without building (or keeping) a
//! heap-allocated [`crate::Report`] per query.
//!
//! A [`Query`] borrows everything it references — the partition, the
//! prebuilt decomposition, the edge weights — from a corpus the *caller*
//! owns, and [`Session::serve`] answers it while recording only a
//! [`Served`]: the wall-clock nanoseconds the query took (the same
//! quantity [`crate::Report::wall_millis`] reports, at nanosecond
//! resolution and without the report's string/vector allocations) plus an
//! FNV-1a fingerprint of the result *values*. Two runs of the same query
//! stream produce the same digest chain exactly when every result is
//! byte-identical — the cheap determinism check the workload harness
//! (`lcs_workload`) is built on. Callers that need the values themselves
//! (equivalence tests, result-collecting drivers) use
//! [`Session::serve_full`], which returns the owned [`QueryValue`]
//! alongside the record; both paths compute the identical digest.

use std::time::Instant;

use lcs_core::{ShortcutQuality, TreeShortcut};
use lcs_graph::{EdgeId, EdgeWeights, Partition, PartitionDelta};
use lcs_mst::ShortcutStrategy;

use crate::{RepairBaseline, Result, Session, Strategy};

/// One serving query, borrowing its inputs from a caller-owned corpus.
/// Dispatched by [`Session::serve`] / [`Session::serve_full`].
#[derive(Debug, Clone, Copy)]
pub enum Query<'a> {
    /// Construct a shortcut for `partition` ([`Session::shortcut`]).
    Construct {
        /// The partition to construct for.
        partition: &'a Partition,
        /// The construction strategy.
        strategy: Strategy,
    },
    /// Verify a prebuilt decomposition against a block-count threshold
    /// ([`Session::verify`]) — the "one decomposition, many consumers"
    /// query shape.
    Verify {
        /// The prebuilt shortcut under verification.
        shortcut: &'a TreeShortcut,
        /// The partition the shortcut was built for.
        partition: &'a Partition,
        /// Maximum number of block components for a part to count as good.
        threshold: usize,
    },
    /// Measure the quality of a prebuilt decomposition
    /// ([`Session::quality`]).
    Quality {
        /// The prebuilt shortcut to measure.
        shortcut: &'a TreeShortcut,
        /// The partition the shortcut was built for.
        partition: &'a Partition,
    },
    /// Run distributed Boruvka MST over the session's graph
    /// ([`Session::mst`]).
    Mst {
        /// The edge weights to minimize over.
        weights: &'a EdgeWeights,
        /// The per-phase shortcut strategy.
        strategy: ShortcutStrategy,
    },
    /// Incrementally repair a tracked decomposition after a partition
    /// delta ([`Session::repair_from`]) — the churn query shape. A pure
    /// function of `(baseline, delta)`: the session's own tracked state is
    /// not consulted or modified.
    Repair {
        /// The detached pre-delta snapshot (partition + corpus).
        baseline: &'a RepairBaseline,
        /// The partition edit to apply and repair after.
        delta: &'a PartitionDelta,
    },
}

impl Query<'_> {
    /// A short label of the query kind (`"construct"`, `"verify"`,
    /// `"quality"`, `"mst"`), for reports and table rows.
    pub fn kind_label(&self) -> &'static str {
        match self {
            Query::Construct { .. } => "construct",
            Query::Verify { .. } => "verify",
            Query::Quality { .. } => "quality",
            Query::Mst { .. } => "mst",
            Query::Repair { .. } => "repair",
        }
    }

    /// The per-kind metric paths `Session::serve` reports under when a
    /// recorder is attached: `(queries counter, rounds counter, latency
    /// timer)`. Static strings so the hot serving path never formats a
    /// metric name.
    fn probe_paths(&self) -> (&'static str, &'static str, &'static str) {
        match self {
            Query::Construct { .. } => (
                "serve/construct/queries",
                "serve/construct/rounds_charged",
                "serve/construct/latency",
            ),
            Query::Verify { .. } => (
                "serve/verify/queries",
                "serve/verify/rounds_charged",
                "serve/verify/latency",
            ),
            Query::Quality { .. } => (
                "serve/quality/queries",
                "serve/quality/rounds_charged",
                "serve/quality/latency",
            ),
            Query::Mst { .. } => (
                "serve/mst/queries",
                "serve/mst/rounds_charged",
                "serve/mst/latency",
            ),
            Query::Repair { .. } => (
                "serve/repair/queries",
                "serve/repair/rounds_charged",
                "serve/repair/latency",
            ),
        }
    }
}

/// The allocation-free record of one served query. `Copy`, so a workload
/// driver can record millions of these into preallocated histograms
/// without touching the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Served {
    /// Wall-clock nanoseconds the query took (service time, excluding the
    /// digest computation).
    pub wall_nanos: u64,
    /// FNV-1a fingerprint of the result values (not the timings): equal
    /// digests for equal results, regardless of thread count or clock.
    pub digest: u64,
    /// CONGEST rounds charged by the query (0 for quality queries, which
    /// measure rather than route).
    pub rounds_charged: u64,
    /// Whether every queried part ended good (construction/verification;
    /// `true` for quality and successful MST queries).
    pub all_good: bool,
}

/// The owned result values of one served query, as returned by
/// [`Session::serve_full`]. Field-for-field identical to what the
/// dedicated query methods return, so equivalence tests can compare a
/// driver's collected values against direct [`Session`] calls.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryValue {
    /// The constructed shortcut of a [`Query::Construct`].
    Construct(TreeShortcut),
    /// The verdicts of a [`Query::Verify`].
    Verify {
        /// `good[p]` — part `p` has at most the threshold block count.
        good: Vec<bool>,
        /// Measured block-component count per part.
        block_counts: Vec<usize>,
    },
    /// The measured quality of a [`Query::Quality`].
    Quality(ShortcutQuality),
    /// The MST of a [`Query::Mst`].
    Mst {
        /// The MST edges, sorted by edge id.
        edges: Vec<EdgeId>,
        /// Total weight of the returned edges.
        weight: u64,
    },
    /// The repaired decomposition of a [`Query::Repair`].
    Repair {
        /// The post-delta shortcut (byte-identical to a full rebuild).
        shortcut: TreeShortcut,
        /// The re-aggregated quality.
        quality: ShortcutQuality,
        /// Per-part good verdicts.
        good: Vec<bool>,
        /// Parts rebuilt by the repair.
        repaired_parts: usize,
        /// Parts reused verbatim.
        reused_parts: usize,
    },
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A running FNV-1a fingerprint over a stream of `u64` words — the digest
/// both [`Session::serve`] and workload drivers chain result values into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValueDigest(u64);

impl ValueDigest {
    /// The empty digest (FNV-1a offset basis).
    pub fn new() -> Self {
        ValueDigest(FNV_OFFSET)
    }

    /// Folds one word into the digest, byte by byte (little-endian).
    pub fn push(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    }

    /// The digest value accumulated so far.
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl Default for ValueDigest {
    fn default() -> Self {
        ValueDigest::new()
    }
}

fn digest_of(value: &QueryValue) -> u64 {
    let mut d = ValueDigest::new();
    match value {
        QueryValue::Construct(shortcut) => {
            d.push(1);
            d.push(shortcut.part_count() as u64);
            for p in 0..shortcut.part_count() {
                let edges = shortcut.edges_of(lcs_graph::PartId::new(p));
                d.push(edges.len() as u64);
                for e in edges {
                    d.push(e.index() as u64);
                }
            }
        }
        QueryValue::Verify { good, block_counts } => {
            d.push(2);
            for &g in good {
                d.push(u64::from(g));
            }
            for &k in block_counts {
                d.push(k as u64);
            }
        }
        QueryValue::Quality(q) => {
            d.push(3);
            d.push(q.congestion as u64);
            d.push(q.dilation as u64);
            d.push(q.block_parameter as u64);
            for &k in &q.per_part_blocks {
                d.push(k as u64);
            }
        }
        QueryValue::Mst { edges, weight } => {
            d.push(4);
            d.push(*weight);
            for e in edges {
                d.push(e.index() as u64);
            }
        }
        QueryValue::Repair {
            shortcut,
            quality,
            good,
            repaired_parts,
            reused_parts,
        } => {
            d.push(5);
            d.push(*repaired_parts as u64);
            d.push(*reused_parts as u64);
            d.push(shortcut.part_count() as u64);
            for p in 0..shortcut.part_count() {
                let edges = shortcut.edges_of(lcs_graph::PartId::new(p));
                d.push(edges.len() as u64);
                for e in edges {
                    d.push(e.index() as u64);
                }
            }
            d.push(quality.congestion as u64);
            d.push(quality.dilation as u64);
            d.push(quality.block_parameter as u64);
            for &k in &quality.per_part_blocks {
                d.push(k as u64);
            }
            for &g in good {
                d.push(u64::from(g));
            }
        }
    }
    d.value()
}

impl Session<'_> {
    /// Serves one [`Query`] and returns only the `Copy` record: wall-clock
    /// nanoseconds plus the FNV-1a fingerprint of the result values. The
    /// result itself is dropped — this is the hot serving path of the
    /// `lcs_workload` drivers, which record latencies into histograms and
    /// chain digests without allocating per query.
    ///
    /// # Errors
    ///
    /// Exactly the errors of the underlying query method
    /// ([`Session::shortcut`], [`Session::verify`], [`Session::quality`],
    /// [`Session::mst`]).
    pub fn serve(&mut self, query: Query<'_>) -> Result<Served> {
        self.serve_shared(query)
    }

    /// [`Session::serve`], additionally returning the owned result values.
    /// The [`Served`] record (including its digest) is identical to what
    /// [`Session::serve`] produces for the same query, so a
    /// result-collecting driver and a digest-only driver agree exactly.
    ///
    /// # Errors
    ///
    /// Same as [`Session::serve`].
    pub fn serve_full(&mut self, query: Query<'_>) -> Result<(Served, QueryValue)> {
        self.serve_shared_full(query)
    }

    /// [`Session::serve`] through a shared reference: any number of
    /// threads may serve queries on one warm session concurrently. Every
    /// query path behind this entry is `&self` — construction, verification
    /// and MST read the session's tree and configuration only, and quality
    /// measurements check a workspace out of the session's lock-protected
    /// pool bank for the duration of the query. Responses are
    /// byte-identical ([`Served::digest`] included) to the `&mut self`
    /// [`Session::serve`] path, which delegates here; concurrency changes
    /// timings, never values. This is the entry point the `lcs_server`
    /// worker threads serve from.
    ///
    /// # Errors
    ///
    /// Same as [`Session::serve`].
    pub fn serve_shared(&self, query: Query<'_>) -> Result<Served> {
        self.serve_shared_full(query).map(|(served, _)| served)
    }

    /// [`Session::serve_shared`], additionally returning the owned result
    /// values — the shared-reference twin of [`Session::serve_full`].
    ///
    /// # Errors
    ///
    /// Same as [`Session::serve`].
    pub fn serve_shared_full(&self, query: Query<'_>) -> Result<(Served, QueryValue)> {
        let probe_paths = self.obs.is_on().then(|| query.probe_paths());
        let start = Instant::now();
        let (wall_nanos, rounds_charged, all_good, value) = match query {
            Query::Construct {
                partition,
                strategy,
            } => {
                let run = self.shortcut(partition, strategy)?;
                let wall = start.elapsed().as_nanos() as u64;
                (
                    wall,
                    run.report.rounds_charged,
                    run.report.all_parts_good,
                    QueryValue::Construct(run.shortcut),
                )
            }
            Query::Verify {
                shortcut,
                partition,
                threshold,
            } => {
                let run = self.verify(shortcut, partition, threshold)?;
                let wall = start.elapsed().as_nanos() as u64;
                (
                    wall,
                    run.report.rounds_charged,
                    run.report.all_parts_good,
                    QueryValue::Verify {
                        good: run.good,
                        block_counts: run.block_counts,
                    },
                )
            }
            Query::Quality {
                shortcut,
                partition,
            } => {
                let quality = self.quality(shortcut, partition)?;
                let wall = start.elapsed().as_nanos() as u64;
                (wall, 0, true, QueryValue::Quality(quality))
            }
            Query::Mst { weights, strategy } => {
                let run = self.mst(weights, strategy)?;
                let wall = start.elapsed().as_nanos() as u64;
                (
                    wall,
                    run.report.rounds_charged,
                    true,
                    QueryValue::Mst {
                        edges: run.edges,
                        weight: run.weight,
                    },
                )
            }
            Query::Repair { baseline, delta } => {
                let run = self.repair_from(baseline, delta)?;
                let wall = start.elapsed().as_nanos() as u64;
                (
                    wall,
                    run.report.rounds_charged,
                    run.report.all_parts_good,
                    QueryValue::Repair {
                        shortcut: run.shortcut,
                        quality: run.quality,
                        good: run.good,
                        repaired_parts: run.repaired_parts,
                        reused_parts: run.reused_parts,
                    },
                )
            }
        };
        if let Some((queries, rounds, latency)) = probe_paths {
            self.obs.counter_add(queries, 1);
            self.obs.counter_add(rounds, rounds_charged);
            self.obs.timer_record(latency, wall_nanos);
        }
        Ok((
            Served {
                wall_nanos,
                digest: digest_of(&value),
                rounds_charged,
                all_good,
            },
            value,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pipeline;
    use lcs_graph::generators;

    #[test]
    fn serve_and_serve_full_agree_on_digest_and_values() {
        let g = generators::grid(6, 6);
        let p = generators::partitions::grid_columns(6, 6);
        let mut session = Pipeline::on(&g).build().unwrap();
        let run = session.shortcut(&p, Strategy::doubling()).unwrap();
        let (_, b) = run.winning_guess().unwrap();

        for query in [
            Query::Construct {
                partition: &p,
                strategy: Strategy::doubling(),
            },
            Query::Verify {
                shortcut: &run.shortcut,
                partition: &p,
                threshold: 3 * b,
            },
            Query::Quality {
                shortcut: &run.shortcut,
                partition: &p,
            },
        ] {
            let (full, value) = session.serve_full(query).unwrap();
            let light = session.serve(query).unwrap();
            assert_eq!(full.digest, light.digest, "{}", query.kind_label());
            assert_eq!(full.rounds_charged, light.rounds_charged);
            assert_eq!(full.all_good, light.all_good);
            assert_eq!(full.digest, super::digest_of(&value));
        }
    }

    #[test]
    fn serve_values_match_the_dedicated_query_methods() {
        let g = generators::wheel(33);
        let p = generators::partitions::wheel_arcs(33, 4);
        let w = lcs_graph::EdgeWeights::random_permutation(&g, 5);
        let mut session = Pipeline::on(&g).seed(3).build().unwrap();

        let direct = session.shortcut(&p, Strategy::doubling()).unwrap();
        let (_, value) = session
            .serve_full(Query::Construct {
                partition: &p,
                strategy: Strategy::doubling(),
            })
            .unwrap();
        assert_eq!(value, QueryValue::Construct(direct.shortcut.clone()));

        let direct_verify = session.verify(&direct.shortcut, &p, 3).unwrap();
        let (_, value) = session
            .serve_full(Query::Verify {
                shortcut: &direct.shortcut,
                partition: &p,
                threshold: 3,
            })
            .unwrap();
        assert_eq!(
            value,
            QueryValue::Verify {
                good: direct_verify.good,
                block_counts: direct_verify.block_counts,
            }
        );

        let direct_quality = session.quality(&direct.shortcut, &p).unwrap();
        let (_, value) = session
            .serve_full(Query::Quality {
                shortcut: &direct.shortcut,
                partition: &p,
            })
            .unwrap();
        assert_eq!(value, QueryValue::Quality(direct_quality));

        let direct_mst = session.mst(&w, crate::ShortcutStrategy::Doubling).unwrap();
        let (_, value) = session
            .serve_full(Query::Mst {
                weights: &w,
                strategy: crate::ShortcutStrategy::Doubling,
            })
            .unwrap();
        assert_eq!(
            value,
            QueryValue::Mst {
                edges: direct_mst.edges,
                weight: direct_mst.weight,
            }
        );
    }

    #[test]
    fn serve_shared_is_byte_identical_to_the_exclusive_path_under_concurrency() {
        let g = generators::grid(6, 6);
        let p = generators::partitions::grid_columns(6, 6);
        let mut session = Pipeline::on(&g).seed(2).build().unwrap();
        let run = session.shortcut(&p, Strategy::doubling()).unwrap();
        let (_, b) = run.winning_guess().unwrap();
        let queries = [
            Query::Construct {
                partition: &p,
                strategy: Strategy::doubling(),
            },
            Query::Verify {
                shortcut: &run.shortcut,
                partition: &p,
                threshold: 3 * b,
            },
            Query::Quality {
                shortcut: &run.shortcut,
                partition: &p,
            },
        ];
        let want: Vec<u64> = queries
            .iter()
            .map(|q| session.serve(*q).unwrap().digest)
            .collect();
        // Four threads hammer the same warm session through the shared
        // path; every thread must observe the exclusive path's digests.
        let session = &session;
        let queries = &queries;
        let per_thread: Vec<Vec<u64>> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    scope.spawn(move || {
                        queries
                            .iter()
                            .map(|q| session.serve_shared(*q).unwrap().digest)
                            .collect::<Vec<u64>>()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|handle| handle.join().expect("serving thread panicked"))
                .collect()
        });
        for digests in per_thread {
            assert_eq!(digests, want);
        }
    }

    #[test]
    fn different_results_produce_different_digests() {
        let g = generators::grid(5, 5);
        let columns = generators::partitions::grid_columns(5, 5);
        let rows = generators::partitions::grid_rows(5, 5);
        let mut session = Pipeline::on(&g).build().unwrap();
        let a = session
            .serve(Query::Construct {
                partition: &columns,
                strategy: Strategy::doubling(),
            })
            .unwrap();
        let b = session
            .serve(Query::Construct {
                partition: &rows,
                strategy: Strategy::doubling(),
            })
            .unwrap();
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn value_digest_is_order_sensitive() {
        let mut a = ValueDigest::new();
        a.push(1);
        a.push(2);
        let mut b = ValueDigest::new();
        b.push(2);
        b.push(1);
        assert_ne!(a.value(), b.value());
        assert_eq!(ValueDigest::new().value(), ValueDigest::default().value());
    }
}
