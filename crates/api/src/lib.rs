//! One front door for the low-congestion-shortcuts workspace.
//!
//! The lower crates (`lcs_graph`, `lcs_congest`, `lcs_core`, `lcs_dist`,
//! `lcs_mst`) each expose precise but scattered entry points: five config
//! structs, four error enums, an execution-mode switch and an environment
//! variable had to be juggled just to run the quickstart. This crate
//! redesigns the public surface around a two-phase object model:
//!
//! 1. **[`Pipeline`]** — a builder fixing the per-graph choices once:
//!    which spanning tree ([`TreeSpec`]), how many worker threads
//!    ([`lcs_graph::Threads`], a value — not an env read), which
//!    [`ExecutionMode`], the seed, and tracing.
//! 2. **[`Session`]** — the built object, owning every piece of state
//!    reusable across queries on one graph: the tree, the engine's
//!    [`lcs_graph::ShardMap`], the epoch-stamped quality workspaces, and
//!    the resolved simulator configuration. Queries
//!    ([`Session::shortcut`], [`Session::quality`], [`Session::verify`],
//!    [`Session::mst`], [`Session::core`], and the multi-query
//!    [`Session::batch`]) allocate per-query results only.
//!
//! Every query reports through one serializable [`Report`] shape and one
//! error enum ([`LcsError`], defined in `lcs_graph` so each layer converts
//! into it). The legacy entry points remain callable as thin shims with
//! migration notes; new code should come through here.
//!
//! # Quick start
//!
//! ```
//! use lcs_api::{Pipeline, Strategy};
//! use lcs_api::graph::generators;
//!
//! // A planar grid partitioned into its columns.
//! let graph = generators::grid(8, 8);
//! let partition = generators::partitions::grid_columns(8, 8);
//!
//! // One session, many queries.
//! let mut session = lcs_api::Pipeline::on(&graph).build().unwrap();
//! let run = session.shortcut(&partition, Strategy::doubling()).unwrap();
//! assert!(run.report.all_parts_good);
//!
//! let quality = session.quality(&run.shortcut, &partition).unwrap();
//! let (_, b) = run.winning_guess().unwrap();
//! assert!(quality.block_parameter <= 3 * b);
//!
//! // The report serializes without any external dependency.
//! assert!(run.report.to_json().starts_with("{\"operation\":\"shortcut\""));
//! # let _ = Pipeline::on(&graph);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod report;
mod serve;
mod session;

pub use config::{CoreKind, DoublingSpec, Strategy, TreeSpec};
pub use report::{Attempt, Report};
pub use serve::{Query, QueryValue, Served, ValueDigest};
pub use session::{
    MstRun, Pipeline, RepairBaseline, RepairRun, Result, Session, ShortcutRun, VerifyRun,
};

// The unified error and the thread-count value type live at the bottom of
// the dependency graph; the façade is their primary surface.
pub use lcs_graph::{LcsError, Threads};

// The partition-edit vocabulary of the incremental repair path
// (`Session::track_partition` / `Session::update_partition`).
pub use lcs_graph::{AppliedDelta, DeltaOp, PartSet, PartitionDelta};

// The execution-mode switch is shared with the legacy entry points.
pub use lcs_core::routing::ExecutionMode;

// Pieces of the lower layers a façade caller still reaches for by name:
// the quality record, the shortcut representations, the MST strategy enum
// (including its baselines), and the distributed cross-check harness.
pub use lcs_congest::{FaultPlan, RoundCost, RoundTrace, SimStats};
pub use lcs_core::construction::CoreOutcome;
pub use lcs_core::{BlockComponent, Shortcut, ShortcutQuality, TreeShortcut};
pub use lcs_dist::{CheckedRun, CrossCheck, RetryPolicy};
pub use lcs_mst::ShortcutStrategy;

/// The graph substrate (structures, generators, spanning trees,
/// partitions, centralized references), re-exported so façade callers need
/// only this crate in scope.
pub use lcs_graph as graph;

/// The CONGEST simulator layer, for callers that drive protocols directly.
pub use lcs_congest as congest;

/// The routing machinery (Lemma 2 schedules, Theorem 2 part primitives),
/// for callers that measure schedules directly.
pub use lcs_core::routing;

/// The centralized existential constructions (the "canonical shortcut"
/// Theorem 3 assumes), used to derive reference `(c, b)` parameters.
pub use lcs_core::existential;

/// The distributed protocol layer, for callers that run individual
/// protocols rather than whole pipeline queries.
pub use lcs_dist as dist;
