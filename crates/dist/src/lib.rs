//! Distributed protocol layer: the shortcut pipeline executed as real
//! CONGEST message passing.
//!
//! The seed reproduction computes the Theorem 2 / Lemma 3 primitives
//! centrally and charges rounds from the exact schedules they *would*
//! execute (see `DESIGN.md` §2). This crate closes that gap: the same
//! primitives run as per-node [`lcs_congest::NodeProtocol`] state machines
//! in the [`lcs_congest::Simulator`], with the per-edge `O(log n)`-bit
//! bandwidth enforced on every message, and return both their computed
//! results and the executed [`lcs_congest::SimStats`].
//!
//! * [`BlockFamily`] — per-node local knowledge over a tree-restricted
//!   shortcut's block components (the paper's Section 4.1 distributed
//!   representation plus its `O(D)` preprocessing);
//! * [`block_convergecast`] / [`block_exchange`] — Lemma 2 as message
//!   passing: part-parallel tree convergecast under the `BlockRootDepth`
//!   priority, and its time-reversed broadcast; the executed round count
//!   equals the exact centralized schedule;
//! * [`part_leaders`] / [`part_min_edges`] / [`part_flood_min`] —
//!   Theorem 2 as message passing: part-wise leader election and the
//!   Boruvka minimum-outgoing-edge primitive via `b` supersteps of
//!   intra-block agreement interleaved with supergraph exchanges;
//! * [`verification_simulated`] — Lemma 3 as message passing: distributed
//!   block-component counting, a sound and complete drop-in for
//!   `lcs_core::construction::verification`;
//! * [`find_shortcut`] — the Theorem 3 driver with an
//!   [`lcs_core::routing::ExecutionMode`] switch for its verification
//!   subroutine;
//! * [`CrossCheck`] — the harness asserting, per primitive, that the
//!   distributed execution equals the centralized result and respects the
//!   paper's round bounds (tabulated by experiment E8).
//!
//! # Example
//!
//! ```
//! use lcs_dist::{part_leaders, BlockFamily};
//! use lcs_core::existential::ancestor_shortcut;
//! use lcs_graph::{generators, NodeId, RootedTree};
//!
//! let graph = generators::wheel(33);
//! let tree = RootedTree::bfs(&graph, NodeId::new(0));
//! let partition = generators::partitions::wheel_arcs(33, 4);
//! let shortcut = ancestor_shortcut(&graph, &tree, &partition);
//! let family = BlockFamily::new(&graph, &tree, &partition, &shortcut);
//! let (leaders, stats) = part_leaders(&graph, &partition, &family, None).unwrap();
//! // Every arc elects its minimum member id, by real message passing.
//! for p in partition.parts() {
//!     assert_eq!(leaders[p.index()], *partition.members(p).iter().min().unwrap());
//! }
//! assert!(stats.rounds > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cast;
mod crosscheck;
mod driver;
mod engine;
mod error;
mod flood;
mod knowledge;
mod verification;

pub use cast::{block_convergecast, block_exchange, BlockCastOutcome};
pub use crosscheck::{CheckedRun, CrossCheck};
pub use driver::find_shortcut;
pub use error::{DistError, Result};
pub use flood::{
    min_edge_candidates, part_flood_min, part_leaders, part_min_edges, PartFloodOutcome,
    PartMinEdges,
};
pub use knowledge::{BlockFamily, Membership, NodeInfo};
pub use verification::{
    counting_supersteps, verification_simulated, verification_simulated_obs,
    verification_simulated_parts, verification_with_retry, DistVerificationOutcome, RetryPolicy,
    RetryVerification,
};
