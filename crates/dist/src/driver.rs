//! Execution-mode dispatch for the construction driver.

use lcs_core::construction::{FindShortcut, FindShortcutConfig, FindShortcutResult};
use lcs_core::routing::ExecutionMode;
use lcs_graph::{Graph, Partition, RootedTree};

use crate::verification::verification_simulated;

/// Runs the Theorem 3 `FindShortcut` driver with the chosen execution mode
/// for its verification subroutine: `Scheduled` is the seed behaviour
/// (centralized results, exact scheduled rounds), `Simulated` drops in the
/// message-passing Lemma 3 block counting of this crate via
/// [`FindShortcut::run_with_verifier`].
///
/// # Errors
///
/// Propagates construction and simulation errors.
pub fn find_shortcut(
    config: FindShortcutConfig,
    mode: ExecutionMode,
    graph: &Graph,
    tree: &RootedTree,
    partition: &Partition,
) -> lcs_core::Result<FindShortcutResult> {
    let driver = FindShortcut::new(config);
    match mode {
        #[allow(deprecated)]
        ExecutionMode::Scheduled => driver.run(graph, tree, partition),
        ExecutionMode::Simulated => {
            driver.run_with_verifier(graph, tree, partition, |g, t, p, s, threshold, active| {
                let outcome = verification_simulated(g, t, p, s, threshold, active, None)
                    .map_err(lcs_core::CoreError::from)?;
                Ok(outcome.outcome)
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_core::existential::reference_parameters;
    use lcs_graph::{generators, NodeId};

    #[test]
    fn simulated_verification_drives_find_shortcut_to_the_same_guarantees() {
        let g = generators::grid(6, 6);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let p = generators::partitions::grid_columns(6, 6);
        let (_, reference) = reference_parameters(&g, &t, &p);
        let config = FindShortcutConfig::new(
            reference.congestion.max(1),
            reference.block_parameter.max(1),
        )
        .with_seed(7);

        let scheduled = find_shortcut(config, ExecutionMode::Scheduled, &g, &t, &p).unwrap();
        let simulated = find_shortcut(config, ExecutionMode::Simulated, &g, &t, &p).unwrap();
        assert!(scheduled.all_parts_good);
        assert!(simulated.all_parts_good);
        // Same cores, same classification of good parts, hence the same
        // shortcut: only the charged verification rounds may differ.
        assert_eq!(simulated.shortcut, scheduled.shortcut);
        assert_eq!(simulated.iterations, scheduled.iterations);
        let b = reference.block_parameter.max(1);
        let q = simulated.shortcut.quality(&g, &p);
        assert!(q.block_parameter <= 3 * b);
    }
}
