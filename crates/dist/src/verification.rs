//! Lemma 3 as message passing: distributed block-component counting, and
//! the resulting drop-in for the `Verification` subroutine (Lemma 6).
//!
//! Each part views its shortcut subgraph as a supergraph whose supernodes
//! are the block components. The protocol runs `3·threshold + 2` Theorem 2
//! supersteps over the block family:
//!
//! 1. **flood** (`threshold` supersteps): every block floods
//!    `(leader = min block-root id, hops)` over the supergraph — a part
//!    with at most `threshold` blocks has supergraph diameter less than
//!    `threshold`, so its blocks converge to a consistent BFS layering;
//! 2. **parent election** (1 superstep): each non-leader block agrees on
//!    the minimum-id neighboring block one hop closer to the leader;
//! 3. **port election** (1 superstep): each block agrees on the minimum-id
//!    graph edge towards its parent block, making the child→parent report
//!    channel unique; the port owner then announces the block to its
//!    parent;
//! 4. **count-up** (`threshold` supersteps): blocks whose announced
//!    children have all reported convergecast `1 + Σ child counts` up the
//!    supergraph BFS tree; the leader block's completed count is the exact
//!    number of blocks of the part;
//! 5. **verdict** (`threshold` supersteps): the leader's verdict (count ≤
//!    threshold, unpoisoned) floods back over the supergraph.
//!
//! Inconsistencies that only arise when a part has *more* than `threshold`
//! blocks (conflicting leader beliefs across an edge, BFS layers differing
//! by ≥ 2, a non-leader block without a parent) poison the affected
//! members, which then refuse every verdict; a part is reported good only
//! if **all** of its members end clean with the same good verdict — which
//! makes the classification sound (a reported-good part really has
//! `count ≤ threshold` exact), while converged parts always classify
//! (completeness). The final all-members conjunction is the `O(D)`
//! whole-tree convergecast the paper's driver performs after each
//! verification anyway; its `depth(T)` rounds are charged on top of the
//! executed protocol rounds, mirroring the scheduled version.

use lcs_congest::{bits_for_node_count, SimConfig, SimError, SimStats};
use lcs_core::construction::VerificationOutcome;
use lcs_core::TreeShortcut;
use lcs_graph::{Graph, NodeId, PartSet, Partition, RootedTree};
use lcs_obs::Obs;

use crate::engine::{run_engine, EngineSpec, NodeProgram};
use crate::error::DistError;
use crate::knowledge::{BlockFamily, Membership, NodeInfo};
use crate::Result;

const NONE: u64 = u64::MAX;

/// Which of the five phases a superstep belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Flood,
    Parent,
    Port,
    Count,
    Verdict,
}

fn phase_of(step: u64, threshold: u64) -> Phase {
    if step < threshold {
        Phase::Flood
    } else if step == threshold {
        Phase::Parent
    } else if step == threshold + 1 {
        Phase::Port
    } else if step < 2 * threshold + 2 {
        Phase::Count
    } else {
        Phase::Verdict
    }
}

/// Number of supersteps of the counting protocol.
pub fn counting_supersteps(threshold: usize) -> u64 {
    3 * threshold as u64 + 2
}

/// Counts each superstep of a run into its phase's counter, so a snapshot
/// shows where the `3t + 2` budget goes. Computed from [`phase_of`] — the
/// same function the protocol dispatches on — so the split cannot drift
/// from the protocol.
fn record_phase_split(obs: &Obs, supersteps: u64, threshold: u64) {
    let mut split = [0u64; 5];
    for step in 0..supersteps {
        let slot = match phase_of(step, threshold) {
            Phase::Flood => 0,
            Phase::Parent => 1,
            Phase::Port => 2,
            Phase::Count => 3,
            Phase::Verdict => 4,
        };
        split[slot] += 1;
    }
    const NAMES: [&str; 5] = [
        "dist/verification/phase/flood",
        "dist/verification/phase/parent",
        "dist/verification/phase/port",
        "dist/verification/phase/count",
        "dist/verification/phase/verdict",
    ];
    for (name, count) in NAMES.iter().zip(split) {
        obs.counter_add(name, count);
    }
}

/// Block-level value circulated intra-block; the variant is determined by
/// the phase.
#[derive(Debug, Clone, PartialEq)]
enum CVal {
    /// `(leader root id, hops)`, lexicographic minimum.
    Flood(u64, u64),
    /// A generic minimum (parent root id or port edge id); [`NONE`] = none.
    Min(u64),
    /// Count aggregation: announced children, reported children, count sum,
    /// poison flag.
    Count(u64, u64, u64, bool),
    /// Verdict dissemination.
    Verd(Option<(bool, u64)>),
}

/// Cross-edge payloads.
#[derive(Debug, Clone)]
enum CCross {
    /// Flood state: sender's block root, leader belief, hop belief.
    Info(u64, u64, u64),
    /// "Your block is my parent": sent once over the elected port.
    Announce(u64),
    /// Completed subtree count: `(child root, count, poison)`.
    Report(u64, u64, bool),
    /// The sender's block is inconsistent; treat the part as suspect.
    Broken,
    /// A decided verdict `(good, total)`.
    Verdict(bool, u64),
}

/// A stored neighbor observation.
#[derive(Debug, Clone)]
struct NbrInfo {
    from: NodeId,
    block_root: u64,
    leader: u64,
    hops: u64,
}

/// Per-node program of the counting protocol. All semantic fields concern
/// the node's own-part block; foreign memberships only relay.
#[derive(Debug, Clone)]
struct CountProgram {
    threshold: u64,
    id_bits: usize,
    edge_bits: usize,
    /// Fault mode: the engine polls `cross_message` at every round of the
    /// cross slot, so one-shot gates (`announce_sent`, `count_sent`) are
    /// disabled and receivers rely on their own deduplication. A lost copy
    /// is then healed by the next resend.
    resend: bool,
    // Agreed own-block state.
    flood: Option<(u64, u64)>,
    parent: Option<u64>,
    port: Option<u64>,
    is_reporter: bool,
    reporter_to: Option<NodeId>,
    block_broken: bool,
    block_poisoned: bool,
    my_count: Option<(u64, bool)>,
    count_sent: bool,
    announce_sent: bool,
    verdict: Option<(bool, u64)>,
    member_bad: bool,
    // Stored observations.
    nbr: Vec<NbrInfo>,
    children_announced: Vec<u64>,
    child_reports: Vec<(u64, u64, bool)>,
}

impl CountProgram {
    fn new(threshold: u64, id_bits: usize, edge_bits: usize, resend: bool) -> Self {
        CountProgram {
            threshold,
            id_bits,
            edge_bits,
            resend,
            flood: None,
            parent: None,
            port: None,
            is_reporter: false,
            reporter_to: None,
            block_broken: false,
            block_poisoned: false,
            my_count: None,
            count_sent: false,
            announce_sent: false,
            verdict: None,
            member_bad: false,
            nbr: Vec::new(),
            children_announced: Vec::new(),
            child_reports: Vec::new(),
        }
    }

    fn is_own(info: &NodeInfo, m: &Membership) -> bool {
        info.own().map(|own| own.block == m.block).unwrap_or(false)
    }

    /// A locally visible inconsistency: a same-part neighbor believing a
    /// different leader, or a BFS layer jump of two or more.
    fn local_witness(&self) -> bool {
        let Some((leader, hops)) = self.flood else {
            return false;
        };
        self.nbr.iter().any(|n| {
            n.leader != leader || (hops != NONE && n.hops != NONE && n.hops.abs_diff(hops) >= 2)
        })
    }

    fn suspect(&self) -> bool {
        self.member_bad || self.block_broken || self.block_poisoned || self.local_witness()
    }

    /// The node's final classification: `Some((good, total))` only when it
    /// ended clean with a decided verdict.
    fn final_verdict(&self) -> Option<(bool, u64)> {
        if self.suspect() {
            return Some((false, 0));
        }
        self.verdict
    }
}

impl NodeProgram for CountProgram {
    type Val = CVal;
    type Cross = CCross;

    fn contribution(&mut self, info: &NodeInfo, m: &Membership, step: u64) -> CVal {
        let phase = phase_of(step, self.threshold);
        if !Self::is_own(info, m) {
            // Identity elements for relay-only memberships.
            return match phase {
                Phase::Flood => CVal::Flood(NONE, NONE),
                Phase::Parent | Phase::Port => CVal::Min(NONE),
                Phase::Count => CVal::Count(0, 0, 0, false),
                Phase::Verdict => CVal::Verd(None),
            };
        }
        match phase {
            Phase::Flood => {
                let mut best = (m.root.index() as u64, 0);
                for n in &self.nbr {
                    if n.hops != NONE {
                        best = best.min((n.leader, n.hops + 1));
                    }
                }
                CVal::Flood(best.0, best.1)
            }
            Phase::Parent => {
                let Some((leader, hops)) = self.flood else {
                    return CVal::Min(NONE);
                };
                if hops == 0 {
                    return CVal::Min(NONE);
                }
                let cand = self
                    .nbr
                    .iter()
                    .filter(|n| n.leader == leader && n.hops != NONE && n.hops + 1 == hops)
                    .map(|n| n.block_root)
                    .min();
                CVal::Min(cand.unwrap_or(NONE))
            }
            Phase::Port => {
                let Some(parent) = self.parent else {
                    return CVal::Min(NONE);
                };
                let cand = info
                    .part_neighbors
                    .iter()
                    .filter(|(u, _)| {
                        self.nbr
                            .iter()
                            .any(|n| n.from == *u && n.block_root == parent)
                    })
                    .map(|(_, e)| e.index() as u64)
                    .min();
                CVal::Min(cand.unwrap_or(NONE))
            }
            Phase::Count => {
                let announced = self.children_announced.len() as u64;
                let reported = self.child_reports.len() as u64;
                let sum: u64 = self.child_reports.iter().map(|(_, c, _)| *c).sum();
                let poison = self.member_bad
                    || self.local_witness()
                    || self.child_reports.iter().any(|(_, _, p)| *p);
                CVal::Count(announced, reported, sum, poison)
            }
            Phase::Verdict => CVal::Verd(self.verdict),
        }
    }

    fn combine(&self, step: u64, a: &CVal, b: &CVal) -> CVal {
        match (a, b) {
            (CVal::Flood(l1, h1), CVal::Flood(l2, h2)) => {
                let m = (*l1, *h1).min((*l2, *h2));
                CVal::Flood(m.0, m.1)
            }
            (CVal::Min(x), CVal::Min(y)) => CVal::Min(*x.min(y)),
            (CVal::Count(a1, r1, s1, p1), CVal::Count(a2, r2, s2, p2)) => {
                CVal::Count(a1 + a2, r1 + r2, s1 + s2, *p1 || *p2)
            }
            (CVal::Verd(x), CVal::Verd(y)) => CVal::Verd((*x).or(*y)),
            _ => unreachable!("mixed value variants in superstep {step}"),
        }
    }

    fn on_agreed(&mut self, info: &NodeInfo, m: &Membership, val: &CVal, step: u64) {
        if !Self::is_own(info, m) {
            return;
        }
        match (phase_of(step, self.threshold), val) {
            (Phase::Flood, CVal::Flood(leader, hops)) => {
                self.flood = Some((*leader, *hops));
            }
            (Phase::Parent, CVal::Min(v)) => {
                self.parent = (*v != NONE).then_some(*v);
                let hops = self.flood.map(|(_, h)| h).unwrap_or(NONE);
                self.block_broken = self.parent.is_none() && hops != 0;
                if self.block_broken {
                    self.member_bad = true;
                }
            }
            (Phase::Port, CVal::Min(v)) => {
                self.port = (*v != NONE).then_some(*v);
                if let (Some(port), Some(parent)) = (self.port, self.parent) {
                    for (u, e) in &info.part_neighbors {
                        let towards_parent = self
                            .nbr
                            .iter()
                            .any(|n| n.from == *u && n.block_root == parent);
                        if e.index() as u64 == port && towards_parent {
                            self.is_reporter = true;
                            self.reporter_to = Some(*u);
                        }
                    }
                }
            }
            (Phase::Count, CVal::Count(announced, reported, sum, poison)) => {
                self.block_poisoned = *poison;
                if reported == announced && self.my_count.is_none() {
                    self.my_count = Some((1 + sum, *poison));
                    let is_leader = self.parent.is_none() && self.flood.map(|(_, h)| h) == Some(0);
                    if is_leader {
                        let good = !*poison && *sum < self.threshold;
                        self.verdict = Some((good, 1 + sum));
                    }
                }
            }
            (Phase::Verdict, CVal::Verd(v)) => {
                if let Some(v) = v {
                    self.verdict.get_or_insert(*v);
                }
            }
            _ => unreachable!("phase/value mismatch"),
        }
    }

    fn cross_message(&mut self, info: &NodeInfo, to: NodeId, step: u64) -> Option<CCross> {
        let own = info.own()?;
        match phase_of(step, self.threshold) {
            Phase::Flood => {
                let (leader, hops) = self.flood?;
                Some(CCross::Info(own.root.index() as u64, leader, hops))
            }
            Phase::Parent => None,
            Phase::Port => {
                if self.is_reporter
                    && self.reporter_to == Some(to)
                    && (self.resend || !self.announce_sent)
                {
                    self.announce_sent = true;
                    Some(CCross::Announce(own.root.index() as u64))
                } else {
                    None
                }
            }
            Phase::Count => {
                if self.suspect() {
                    return Some(CCross::Broken);
                }
                if self.is_reporter && self.reporter_to == Some(to) {
                    if let Some((count, poison)) = self.my_count {
                        if self.resend || !self.count_sent {
                            self.count_sent = true;
                            return Some(CCross::Report(own.root.index() as u64, count, poison));
                        }
                    } else if self.resend {
                        // Until the subtree count completes, keep
                        // re-announcing: a Port-phase Announce whose every
                        // copy was lost would otherwise leave the parent's
                        // `reported == announced` gate free to fire without
                        // this child.
                        return Some(CCross::Announce(own.root.index() as u64));
                    }
                }
                None
            }
            Phase::Verdict => {
                if self.member_bad {
                    return Some(CCross::Broken);
                }
                self.verdict
                    .map(|(good, total)| CCross::Verdict(good, total))
            }
        }
    }

    fn on_cross(&mut self, _info: &NodeInfo, from: NodeId, msg: CCross, _step: u64) {
        match msg {
            CCross::Info(block_root, leader, hops) => {
                if let Some(n) = self.nbr.iter_mut().find(|n| n.from == from) {
                    n.leader = leader;
                    n.hops = hops;
                } else {
                    self.nbr.push(NbrInfo {
                        from,
                        block_root,
                        leader,
                        hops,
                    });
                }
            }
            CCross::Announce(child_root) => {
                if !self.children_announced.contains(&child_root) {
                    self.children_announced.push(child_root);
                }
            }
            CCross::Report(child_root, count, poison) => {
                // A Report implies the sender's Announce: healing the
                // announced set here keeps the `reported == announced`
                // completion gate honest when every copy of the Announce
                // itself was lost. A no-op in fault-free runs, where the
                // Announce always precedes the Report.
                if !self.children_announced.contains(&child_root) {
                    self.children_announced.push(child_root);
                }
                if !self.child_reports.iter().any(|(r, _, _)| *r == child_root) {
                    self.child_reports.push((child_root, count, poison));
                }
            }
            CCross::Broken => {
                self.member_bad = true;
            }
            CCross::Verdict(good, total) => {
                self.verdict.get_or_insert((good, total));
            }
        }
    }

    fn val_bits(&self) -> usize {
        // Variant tag plus the widest variant (the count aggregate).
        2 + (3 * self.id_bits + 2)
            .max(2 * (self.id_bits + 1))
            .max(self.edge_bits + 1)
    }

    fn cross_bits(&self) -> usize {
        // Variant tag plus the widest payload (the flood info triple).
        3 + 3 * (self.id_bits + 1)
    }
}

/// Result of the distributed verification.
#[derive(Debug, Clone)]
pub struct DistVerificationOutcome {
    /// The drop-in verification outcome: `good` flags, measured block
    /// counts (exact for good parts, 0 for parts classified bad), and the
    /// charged rounds (executed protocol rounds plus the `depth(T)` global
    /// check).
    pub outcome: VerificationOutcome,
    /// Simulation statistics of the executed protocol.
    pub stats: SimStats,
    /// Per-round delivery trace of the executed protocol; empty unless the
    /// caller passed a [`SimConfig`] with tracing enabled.
    pub trace: Vec<lcs_congest::RoundTrace>,
    /// Number of supersteps executed (`3·threshold + 2`).
    pub supersteps: u64,
    /// Whether every active part reached a definite classification: all of
    /// its members returned a verdict and the verdicts agree. Always true
    /// in fault-free runs; under an active [`lcs_congest::FaultPlan`] a
    /// crash or heavy loss can leave members undecided (or split), in which
    /// case the run is a *stall* — the [`verification_with_retry`] wrapper
    /// detects this and re-runs the protocol in a fresh epoch.
    pub decisive: bool,
}

/// Runs the Lemma 3 block counting as real message passing and classifies
/// every active part against `threshold`.
///
/// Guarantees: a part reported good really has at most `threshold` block
/// components and its reported count is exact; a part whose supergraph
/// converges within `threshold` hops (in particular every part with at most
/// `threshold` blocks) is always classified, so the subroutine is a sound
/// and complete drop-in for `lcs_core::construction::verification`.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if `active.len()` differs from the partition's part count or if
/// `threshold` is zero.
pub fn verification_simulated(
    graph: &Graph,
    tree: &RootedTree,
    partition: &Partition,
    shortcut: &TreeShortcut,
    threshold: usize,
    active: &[bool],
    config: Option<SimConfig>,
) -> Result<DistVerificationOutcome> {
    verification_simulated_obs(
        graph,
        tree,
        partition,
        shortcut,
        threshold,
        active,
        config,
        &Obs::off(),
    )
}

/// [`verification_simulated`] with an instrumentation handle: reports the
/// protocol shape (`dist/verification/*` counters, including the
/// superstep-per-phase split) and the underlying engine's counters,
/// gauges, and timers through `obs`, and wraps the run in a
/// `dist/verification` span. All reported counters are thread-invariant
/// facts; only span/timer durations vary between runs.
#[allow(clippy::too_many_arguments)]
pub fn verification_simulated_obs(
    graph: &Graph,
    tree: &RootedTree,
    partition: &Partition,
    shortcut: &TreeShortcut,
    threshold: usize,
    active: &[bool],
    config: Option<SimConfig>,
    obs: &Obs,
) -> Result<DistVerificationOutcome> {
    assert!(threshold >= 1, "the block threshold must be at least 1");
    assert_eq!(
        active.len(),
        partition.part_count(),
        "one active flag per part is required"
    );
    let _span = lcs_obs::span!(obs, "dist/verification");
    let family = BlockFamily::new_active(graph, tree, partition, shortcut, active);
    let supersteps = counting_supersteps(threshold);
    if obs.is_on() {
        obs.counter_add("dist/verification/runs", 1);
        obs.counter_add("dist/verification/supersteps", supersteps);
        record_phase_split(obs, supersteps, threshold as u64);
    }
    let spec = EngineSpec {
        steps: supersteps,
        broadcast_down: true,
    };
    let id_bits = bits_for_node_count(graph.node_count());
    let edge_bits = lcs_congest::bits_for_count(graph.edge_count().max(2));
    let resend = config.as_ref().and_then(|c| c.active_fault()).is_some();
    let outcome = run_engine(graph, &family, spec, config, obs, |_info: &NodeInfo| {
        CountProgram::new(threshold as u64, id_bits, edge_bits, resend)
    })?;

    let mut good = vec![false; partition.part_count()];
    let mut block_counts = vec![0usize; partition.part_count()];
    let mut decisive = true;
    for p in partition.parts() {
        if !active[p.index()] {
            continue;
        }
        // The paper's driver follows every verification with an O(D)
        // whole-tree convergecast; here it realizes the all-members
        // conjunction that makes the classification sound.
        let mut part_verdict: Option<(bool, u64)> = None;
        let mut consistent = true;
        for &v in partition.members(p) {
            match outcome.nodes[v.index()].program().final_verdict() {
                Some(v) => match part_verdict {
                    None => part_verdict = Some(v),
                    Some(seen) if seen == v => {}
                    Some(_) => consistent = false,
                },
                None => consistent = false,
            }
        }
        // An undecided or split part stays classified bad (sound), but the
        // run as a whole is flagged indecisive so a retry wrapper can tell
        // a fault-induced stall from a genuine over-threshold part.
        if !consistent {
            decisive = false;
        }
        if let (true, Some((true, total))) = (consistent, part_verdict) {
            good[p.index()] = true;
            block_counts[p.index()] = total as usize;
        }
    }

    let rounds = outcome.stats.rounds + u64::from(tree.depth_of_tree());
    Ok(DistVerificationOutcome {
        outcome: VerificationOutcome {
            good,
            block_counts,
            rounds,
        },
        stats: outcome.stats,
        trace: outcome.trace,
        supersteps,
        decisive,
    })
}

/// [`verification_simulated_obs`] restricted to an explicit part set —
/// the entry the incremental repair layer drives: only the parts in
/// `parts` are verified (the dirty closure of a partition delta), every
/// other part is skipped by the protocol exactly as an inactive part of a
/// driver iteration would be.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if `parts` is defined over a different part universe than the
/// partition or if `threshold` is zero.
#[allow(clippy::too_many_arguments)]
pub fn verification_simulated_parts(
    graph: &Graph,
    tree: &RootedTree,
    partition: &Partition,
    shortcut: &TreeShortcut,
    threshold: usize,
    parts: &PartSet,
    config: Option<SimConfig>,
    obs: &Obs,
) -> Result<DistVerificationOutcome> {
    assert_eq!(
        parts.universe(),
        partition.part_count(),
        "the part set must cover the partition's part universe"
    );
    verification_simulated_obs(
        graph,
        tree,
        partition,
        shortcut,
        threshold,
        parts.as_mask(),
        config,
        obs,
    )
}

/// How [`verification_with_retry`] turns stalled runs into fresh epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of epochs before giving up (at least 1 is run).
    pub max_epochs: u32,
    /// The first epoch's round budget is the engine's exact fault-mode
    /// schedule multiplied by this factor, so transient queue build-up
    /// cannot trip the cap.
    pub timeout_factor: u32,
    /// Every further epoch multiplies the budget by this factor again
    /// (exponential back-off against systematic slowness).
    pub backoff: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_epochs: 5,
            timeout_factor: 2,
            backoff: 2,
        }
    }
}

/// Result of [`verification_with_retry`].
#[derive(Debug, Clone)]
pub struct RetryVerification {
    /// The last executed epoch's outcome; `None` only if every epoch died
    /// on the round cap before producing one.
    pub outcome: Option<DistVerificationOutcome>,
    /// Number of epochs executed (1 if the first attempt succeeded).
    pub epochs: u32,
    /// Number of stalled epochs (indecisive conjunction or round-cap hit).
    pub stalls: u32,
    /// Whether the returned outcome is decisive. `false` means the fault
    /// plan defeated every epoch — the caller should surface a degraded
    /// result rather than trust the classification.
    pub decisive: bool,
}

/// Self-healing wrapper around [`verification_simulated_obs`]: detects a
/// stalled conjunction (crashed members never deciding, or the round cap
/// tripping under heavy loss) and re-runs the protocol in a fresh *epoch*.
///
/// Each epoch advances the fault plan's round offset by the previous
/// epoch's budget, so the retry observes the same deterministic fault
/// world later in global time: crash windows with a restart have healed,
/// and loss/duplication draws differ. With any restarting crash schedule
/// and loss below the resend redundancy this converges with probability
/// rapidly approaching one in a handful of epochs. The whole procedure is
/// deterministic: same plan, same policy, same outcome, on every engine.
///
/// Without an active fault plan on `config` this is exactly one plain run.
///
/// # Errors
///
/// Propagates simulator errors other than the round cap (which is part of
/// the stall-detection loop).
///
/// # Panics
///
/// As [`verification_simulated_obs`]; additionally if a policy field is 0
/// where at least 1 is required (all fields are clamped to 1 instead).
#[allow(clippy::too_many_arguments)]
pub fn verification_with_retry(
    graph: &Graph,
    tree: &RootedTree,
    partition: &Partition,
    shortcut: &TreeShortcut,
    threshold: usize,
    active: &[bool],
    config: Option<SimConfig>,
    policy: RetryPolicy,
    obs: &Obs,
) -> Result<RetryVerification> {
    let cfg = config.unwrap_or_else(|| SimConfig::for_graph(graph));
    let Some(base_plan) = cfg.active_fault() else {
        let outcome = verification_simulated_obs(
            graph,
            tree,
            partition,
            shortcut,
            threshold,
            active,
            Some(cfg),
            obs,
        )?;
        let decisive = outcome.decisive;
        return Ok(RetryVerification {
            outcome: Some(outcome),
            epochs: 1,
            stalls: 0,
            decisive,
        });
    };

    // The engine's exact fault-mode schedule for this instance: the same
    // formula `run_engine` uses, so the first epoch's budget is
    // `timeout_factor ×` the nominal run and never spuriously tight.
    let family = BlockFamily::new_active(graph, tree, partition, shortcut, active);
    let l = family.schedule().rounds;
    let s = base_plan.round_stretch().max(1);
    let base_budget = counting_supersteps(threshold)
        .saturating_mul(crate::engine::faulty_window((l + 1) * s, s))
        .saturating_add(2);

    let max_epochs = policy.max_epochs.max(1);
    let mut offset = base_plan.round_offset();
    let mut stalls = 0u32;
    let mut last: Option<DistVerificationOutcome> = None;
    for epoch in 0..max_epochs {
        let budget = base_budget
            .saturating_mul(u64::from(policy.timeout_factor.max(1)))
            .saturating_mul(u64::from(policy.backoff.max(1)).saturating_pow(epoch));
        let cfg_e = cfg
            .with_fault(base_plan.with_round_offset(offset))
            .with_max_rounds(budget);
        if obs.is_on() {
            obs.counter_add("dist/verification/epochs", 1);
        }
        match verification_simulated_obs(
            graph,
            tree,
            partition,
            shortcut,
            threshold,
            active,
            Some(cfg_e),
            obs,
        ) {
            Ok(out) if out.decisive => {
                return Ok(RetryVerification {
                    outcome: Some(out),
                    epochs: epoch + 1,
                    stalls,
                    decisive: true,
                });
            }
            Ok(out) => {
                stalls += 1;
                if obs.is_on() {
                    obs.counter_add("dist/verification/stalls", 1);
                }
                last = Some(out);
            }
            Err(DistError::Simulation(SimError::RoundLimitExceeded { .. })) => {
                stalls += 1;
                if obs.is_on() {
                    obs.counter_add("dist/verification/stalls", 1);
                }
            }
            Err(other) => return Err(other),
        }
        // The next epoch starts where this one's budget ended in global
        // fault time: restartable crash windows are behind it and the
        // loss/duplication draws are fresh (but still deterministic).
        offset = offset.saturating_add(budget);
    }
    Ok(RetryVerification {
        outcome: last,
        epochs: max_epochs,
        stalls,
        decisive: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_core::construction::verification;
    use lcs_core::existential::ancestor_shortcut;
    use lcs_graph::generators;

    fn all_active(p: &Partition) -> Vec<bool> {
        vec![true; p.part_count()]
    }

    fn check_against_scheduled(
        graph: &Graph,
        tree: &RootedTree,
        partition: &Partition,
        shortcut: &TreeShortcut,
        threshold: usize,
    ) {
        let active = all_active(partition);
        let scheduled = verification(graph, tree, partition, shortcut, threshold, &active);
        let simulated =
            verification_simulated(graph, tree, partition, shortcut, threshold, &active, None)
                .unwrap();
        assert_eq!(
            simulated.outcome.good, scheduled.good,
            "classification must match the scheduled verification (threshold {threshold})"
        );
        for p in partition.parts() {
            if scheduled.good[p.index()] {
                assert_eq!(
                    simulated.outcome.block_counts[p.index()],
                    scheduled.block_counts[p.index()],
                    "good part {p} must report the exact count"
                );
            }
        }
    }

    #[test]
    fn grid_ancestor_shortcut_verifies_like_the_scheduled_version() {
        let g = generators::grid(6, 6);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let p = generators::partitions::grid_columns(6, 6);
        let s = ancestor_shortcut(&g, &t, &p);
        for threshold in [1, 2, 4] {
            check_against_scheduled(&g, &t, &p, &s, threshold);
        }
    }

    #[test]
    fn empty_shortcut_thresholds_classify_exactly() {
        let g = generators::grid(5, 5);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let p = generators::partitions::grid_columns(5, 5);
        let s = TreeShortcut::empty(&g, &p);
        // Every column has 5 singleton blocks.
        for threshold in [3, 4, 5, 6] {
            check_against_scheduled(&g, &t, &p, &s, threshold);
        }
    }

    #[test]
    fn inactive_parts_are_ignored() {
        let g = generators::grid(4, 4);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let p = generators::partitions::grid_columns(4, 4);
        let s = ancestor_shortcut(&g, &t, &p);
        let mut active = all_active(&p);
        active[1] = false;
        let simulated = verification_simulated(&g, &t, &p, &s, 1, &active, None).unwrap();
        assert!(!simulated.outcome.good[1]);
        assert_eq!(simulated.outcome.block_counts[1], 0);
        assert!(simulated.outcome.good[0] && simulated.outcome.good[2]);
    }

    #[test]
    fn executed_rounds_respect_the_superstep_bound() {
        let g = generators::torus(5, 5);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let p = generators::partitions::random_bfs_balls(&g, 5, 3);
        let s = ancestor_shortcut(&g, &t, &p);
        let family = BlockFamily::new(&g, &t, &p, &s);
        let threshold = 3;
        let simulated =
            verification_simulated(&g, &t, &p, &s, threshold, &all_active(&p), None).unwrap();
        let window = 2 * family.schedule().rounds + 1;
        assert!(simulated.stats.rounds <= counting_supersteps(threshold) * window);
    }
}
