//! Theorem 2 as message passing: part-wise minimum flooding.
//!
//! One value per part member; after `b` supersteps of intra-block agreement
//! (convergecast + reversed broadcast) interleaved with one round of
//! exchange over same-part graph edges, every member of every part knows
//! the minimum over its part. Flooding a minimum subsumes the Theorem 2
//! primitives this crate needs operationally:
//!
//! * **leader election** ([`part_leaders`]) — flood the member ids; the
//!   minimum is the leader every scheduled primitive elects;
//! * **minimum outgoing edge** ([`part_min_edges`]) — flood `(weight,
//!   edge)` pairs; the lexicographic minimum is the Boruvka phase result,
//!   already known to every member (aggregation and broadcast in one).
//!
//! The executed round count is at most `b·(2L + 1)`, the operational form
//! of the Theorem 2 `O(b(D + c))` bound (`L ≤ D + c` is the family's exact
//! Lemma 2 schedule length).

use lcs_congest::{bits_for_count, SimConfig, SimStats};
use lcs_graph::{EdgeId, Graph, NodeId, Partition};

use crate::engine::{run_engine, EngineSpec, NodeProgram};
use crate::knowledge::{BlockFamily, Membership, NodeInfo};
use crate::{DistError, Result};

/// Per-part minimum-outgoing-edge candidates, as returned by
/// [`part_min_edges`].
pub type PartMinEdges = Vec<Option<(u64, EdgeId)>>;

/// Result of a part-wise minimum flood.
#[derive(Debug, Clone)]
pub struct PartFloodOutcome {
    /// The agreed minimum per part (`None` when no member carried a value).
    pub per_part: Vec<Option<(u64, u64)>>,
    /// Each member's final view (equals its part's entry; `None` outside
    /// every part).
    pub per_node: Vec<Option<(u64, u64)>>,
    /// Number of supersteps executed (`b`).
    pub supersteps: u64,
    /// Simulation statistics of the executed protocol.
    pub stats: SimStats,
}

#[derive(Debug, Clone)]
struct FloodProgram {
    current: Option<(u64, u64)>,
    value_bits: usize,
}

fn min_opt(a: Option<(u64, u64)>, b: Option<(u64, u64)>) -> Option<(u64, u64)> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

impl NodeProgram for FloodProgram {
    type Val = Option<(u64, u64)>;
    type Cross = (u64, u64);

    fn contribution(&mut self, info: &NodeInfo, m: &Membership, _step: u64) -> Self::Val {
        let own = info
            .own_membership
            .map(|i| info.memberships[i].block == m.block)
            .unwrap_or(false);
        if own {
            self.current
        } else {
            None
        }
    }

    fn combine(&self, _step: u64, a: &Self::Val, b: &Self::Val) -> Self::Val {
        min_opt(*a, *b)
    }

    fn on_agreed(&mut self, info: &NodeInfo, m: &Membership, val: &Self::Val, _step: u64) {
        let own = info
            .own_membership
            .map(|i| info.memberships[i].block == m.block)
            .unwrap_or(false);
        if own {
            self.current = min_opt(self.current, *val);
        }
    }

    fn cross_message(&mut self, _info: &NodeInfo, _to: NodeId, _step: u64) -> Option<(u64, u64)> {
        self.current
    }

    fn on_cross(&mut self, _info: &NodeInfo, _from: NodeId, msg: (u64, u64), _step: u64) {
        self.current = min_opt(self.current, Some(msg));
    }

    fn val_bits(&self) -> usize {
        1 + self.value_bits
    }

    fn cross_bits(&self) -> usize {
        self.value_bits
    }
}

/// Floods the part-wise minimum of `values` (lexicographic order on the
/// pair) to every part member, as real message passing.
///
/// `value_bits` is the declared encoded width of a value pair — e.g.
/// `⌈log₂ n⌉` for node ids, or weight bits plus edge-id bits for Boruvka
/// candidates; the simulator rejects the run if a message exceeds the
/// CONGEST bandwidth, so undersized declarations fail loudly.
///
/// # Errors
///
/// Propagates simulator errors; reports a protocol invariant violation if
/// part members end up disagreeing (which would indicate an engine bug).
///
/// # Panics
///
/// Panics if `values.len()` differs from the graph's node count.
pub fn part_flood_min(
    graph: &Graph,
    partition: &Partition,
    family: &BlockFamily,
    values: &[Option<(u64, u64)>],
    value_bits: usize,
    config: Option<SimConfig>,
) -> Result<PartFloodOutcome> {
    assert_eq!(
        values.len(),
        graph.node_count(),
        "one optional value per node is required"
    );
    let supersteps = family.block_parameter().max(1) as u64;
    let spec = EngineSpec {
        steps: supersteps,
        broadcast_down: true,
    };
    let obs = lcs_obs::Obs::off();
    let outcome = run_engine(graph, family, spec, config, &obs, |info: &NodeInfo| {
        FloodProgram {
            current: values[info.node.index()],
            value_bits,
        }
    })?;

    let per_node: Vec<Option<(u64, u64)>> =
        outcome.nodes.iter().map(|n| n.program().current).collect();
    let mut per_part: Vec<Option<(u64, u64)>> = vec![None; partition.part_count()];
    for p in partition.parts() {
        let members = partition.members(p);
        // Skip parts outside the family's view (inactive parts).
        if members.iter().all(|&v| family.info(v).part.is_none()) {
            continue;
        }
        let first = per_node[members[0].index()];
        for &v in members {
            if per_node[v.index()] != first {
                return Err(DistError::ProtocolInvariant {
                    reason: format!(
                        "members of part {p} disagree after flooding: {:?} vs {:?} at {v}",
                        first,
                        per_node[v.index()]
                    ),
                });
            }
        }
        per_part[p.index()] = first;
    }
    Ok(PartFloodOutcome {
        per_part,
        per_node,
        supersteps,
        stats: outcome.stats,
    })
}

/// Elects every part's leader (its minimum member id) by distributed
/// flooding. Returns the leaders and the executed statistics.
///
/// # Errors
///
/// Same as [`part_flood_min`].
pub fn part_leaders(
    graph: &Graph,
    partition: &Partition,
    family: &BlockFamily,
    config: Option<SimConfig>,
) -> Result<(Vec<NodeId>, SimStats)> {
    let values: Vec<Option<(u64, u64)>> = graph
        .nodes()
        .map(|v| partition.part_of(v).map(|_| (v.index() as u64, 0)))
        .collect();
    let value_bits = lcs_congest::bits_for_node_count(graph.node_count()) + 1;
    let outcome = part_flood_min(graph, partition, family, &values, value_bits, config)?;
    let mut leaders = Vec::with_capacity(partition.part_count());
    for p in partition.parts() {
        let (id, _) = outcome.per_part[p.index()].ok_or_else(|| DistError::ProtocolInvariant {
            reason: format!("part {p} elected no leader"),
        })?;
        leaders.push(NodeId::new(id as usize));
    }
    Ok((leaders, outcome.stats))
}

/// Computes every part's minimum-weight outgoing edge candidate — the
/// Boruvka phase primitive — by distributed flooding of `(weight, edge)`
/// pairs. Every member ends up knowing its part's minimum, so the result
/// covers both the Theorem 2 aggregation *and* the broadcast back.
///
/// # Errors
///
/// Same as [`part_flood_min`].
///
/// # Panics
///
/// Panics if `candidates.len()` differs from the graph's node count.
pub fn part_min_edges(
    graph: &Graph,
    partition: &Partition,
    family: &BlockFamily,
    candidates: &[Option<(u64, EdgeId)>],
    config: Option<SimConfig>,
) -> Result<(PartMinEdges, SimStats)> {
    let values: Vec<Option<(u64, u64)>> = candidates
        .iter()
        .map(|c| c.map(|(w, e)| (w, e.index() as u64)))
        .collect();
    // Weights are assumed to fit in O(log n) bits, the standard CONGEST
    // convention; declare the width actually needed so the bandwidth check
    // stays meaningful.
    let max_weight = candidates
        .iter()
        .flatten()
        .map(|(w, _)| *w)
        .max()
        .unwrap_or(0);
    let weight_bits = (64 - max_weight.leading_zeros() as usize).max(1);
    let edge_bits = bits_for_count(graph.edge_count().max(2));
    let outcome = part_flood_min(
        graph,
        partition,
        family,
        &values,
        weight_bits + edge_bits,
        config,
    )?;
    let per_part = outcome
        .per_part
        .iter()
        .map(|v| v.map(|(w, e)| (w, EdgeId::new(e as usize))))
        .collect();
    Ok((per_part, outcome.stats))
}

/// Per-node Boruvka candidates for a weighted instance: every part
/// member's minimum-weight edge leaving its part (`None` for nodes outside
/// every part or without an outgoing edge). This is the local computation
/// each node performs after the one-round part-id exchange of a Boruvka
/// phase — the input [`part_min_edges`] floods.
pub fn min_edge_candidates(
    graph: &Graph,
    partition: &Partition,
    weights: &lcs_graph::EdgeWeights,
) -> Vec<Option<(u64, EdgeId)>> {
    graph
        .nodes()
        .map(|v| {
            let my = partition.part_of(v)?;
            graph
                .neighbors(v)
                .filter(|&(u, _)| partition.part_of(u) != Some(my))
                .map(|(_, e)| (weights.weight(e), e))
                .min()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_core::existential::ancestor_shortcut;
    use lcs_core::routing::PartRouter;
    use lcs_core::TreeShortcut;
    use lcs_graph::{generators, RootedTree};

    #[test]
    fn leaders_match_the_scheduled_election_on_the_wheel() {
        let g = generators::wheel(41);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let p = generators::partitions::wheel_arcs(41, 5);
        let s = ancestor_shortcut(&g, &t, &p);
        let family = BlockFamily::new(&g, &t, &p, &s);
        let router = PartRouter::new(&g, &t, &p, &s);
        let scheduled = router.elect_leaders();
        let (leaders, stats) = part_leaders(&g, &p, &family, None).unwrap();
        assert_eq!(leaders, scheduled.values);
        // Executed rounds respect the Theorem 2 operational bound.
        let l = family.schedule().rounds;
        let b = family.block_parameter() as u64;
        assert!(stats.rounds <= b * (2 * l + 1));
    }

    #[test]
    fn flooding_over_an_empty_shortcut_still_converges() {
        // No shortcut edges: blocks are singleton members, agreement happens
        // purely over same-part graph edges, one hop per superstep.
        let g = generators::grid(4, 4);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let p = generators::partitions::grid_columns(4, 4);
        let s = TreeShortcut::empty(&g, &p);
        let family = BlockFamily::new(&g, &t, &p, &s);
        let (leaders, _) = part_leaders(&g, &p, &family, None).unwrap();
        for q in p.parts() {
            assert_eq!(leaders[q.index()], *p.members(q).iter().min().unwrap());
        }
    }

    #[test]
    fn min_edge_candidates_flood_to_the_true_minimum() {
        let g = generators::grid(5, 5);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let p = generators::partitions::grid_columns(5, 5);
        let s = ancestor_shortcut(&g, &t, &p);
        let family = BlockFamily::new(&g, &t, &p, &s);
        let w = lcs_graph::EdgeWeights::random_permutation(&g, 3);
        let candidates = min_edge_candidates(&g, &p, &w);
        let (per_part, _) = part_min_edges(&g, &p, &family, &candidates, None).unwrap();
        for q in p.parts() {
            let expected = p
                .members(q)
                .iter()
                .filter_map(|&v| candidates[v.index()])
                .min();
            assert_eq!(per_part[q.index()], expected);
        }
    }
}
