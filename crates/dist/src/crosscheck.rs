//! The cross-check harness: every distributed protocol run against its
//! centralized/scheduled counterpart on the same instance.
//!
//! For each primitive the harness asserts two things and reports the
//! numbers either way:
//!
//! 1. **result equality** — the message-passing execution computes exactly
//!    what the centralized code computes;
//! 2. **round bounds** — the executed [`lcs_congest::SimStats::rounds`]
//!    respects the paper's bound for the primitive: the exact schedule
//!    length (and hence `D + c`) for the Lemma 2 convergecast, `2L` for a
//!    full intra-block exchange, `b·(2L + 1)` (the operational
//!    `O(b(D + c))` of Theorem 2) for part flooding, and
//!    `(3·threshold + 2)·(2L + 1)` (the operational `O(threshold·(D + c))`
//!    of Lemma 3) for the distributed verification.
//!
//! E8 of the experiment suite tabulates [`CheckedRun`]s across the
//! generator families; the property tests re-run them on random instances.

use lcs_congest::{primitives::AggregateOp, SimStats};
use lcs_core::construction::verification;
use lcs_core::routing::PartRouter;
use lcs_core::TreeShortcut;
use lcs_graph::{EdgeId, Graph, Partition, RootedTree};

use crate::cast::block_convergecast;
use crate::flood::{part_leaders, part_min_edges};
use crate::knowledge::BlockFamily;
use crate::verification::{counting_supersteps, verification_simulated};
use crate::{DistError, Result};

/// One charged-vs-executed comparison that passed its checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckedRun {
    /// Rounds charged by the scheduled (centralized) version.
    pub charged: u64,
    /// Rounds executed by the message-passing protocol.
    pub executed: u64,
    /// The bound the executed count was checked against.
    pub bound: u64,
    /// Messages delivered by the executed protocol.
    pub messages: u64,
}

/// Cross-check harness bound to one `(graph, tree, partition, shortcut)`
/// instance.
#[derive(Debug)]
pub struct CrossCheck<'a> {
    graph: &'a Graph,
    tree: &'a RootedTree,
    partition: &'a Partition,
    shortcut: &'a TreeShortcut,
    family: BlockFamily,
}

impl<'a> CrossCheck<'a> {
    /// Builds the harness; the family's measured schedule must itself
    /// respect Lemma 2 (`L ≤ D + c`), which is asserted here once.
    ///
    /// # Errors
    ///
    /// Reports a bound violation if the measured schedule exceeds `D + c`.
    pub fn new(
        graph: &'a Graph,
        tree: &'a RootedTree,
        partition: &'a Partition,
        shortcut: &'a TreeShortcut,
    ) -> Result<Self> {
        let family = BlockFamily::new(graph, tree, partition, shortcut);
        let l = family.schedule().rounds;
        let bound = family.lemma2_bound();
        if l > bound {
            return Err(DistError::BoundViolation {
                reason: format!("schedule length {l} exceeds the Lemma 2 bound {bound}"),
            });
        }
        Ok(CrossCheck {
            graph,
            tree,
            partition,
            shortcut,
            family,
        })
    }

    /// The block family the checks run over.
    pub fn family(&self) -> &BlockFamily {
        &self.family
    }

    fn check_bound(stats: SimStats, bound: u64, what: &str) -> Result<()> {
        if stats.rounds > bound {
            return Err(DistError::BoundViolation {
                reason: format!("{what}: executed {} > bound {bound}", stats.rounds),
            });
        }
        Ok(())
    }

    /// Lemma 2: the distributed block convergecast must equal the
    /// centrally computed per-block aggregates and take *exactly* the
    /// scheduled number of rounds.
    ///
    /// # Errors
    ///
    /// Reports mismatches and bound violations.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the graph's node count.
    pub fn convergecast(&self, values: &[Option<u64>], op: AggregateOp) -> Result<CheckedRun> {
        let outcome = block_convergecast(self.graph, &self.family, values, op, None)?;
        let schedule = self.family.schedule();
        if outcome.stats.rounds != schedule.rounds {
            return Err(DistError::BoundViolation {
                reason: format!(
                    "convergecast executed {} rounds, schedule says {}",
                    outcome.stats.rounds, schedule.rounds
                ),
            });
        }
        Self::check_bound(outcome.stats, self.family.lemma2_bound(), "convergecast")?;
        // Centralized reference: fold members' values per block.
        for (b_idx, block) in self.family.blocks().iter().enumerate() {
            let expected = block
                .nodes
                .iter()
                .filter(|&&v| self.partition.part_of(v) == Some(block.part))
                .filter_map(|&v| values[v.index()])
                .reduce(|a, b| op.combine(a, b));
            if outcome.per_block[b_idx] != expected {
                return Err(DistError::Mismatch {
                    reason: format!(
                        "block {b_idx}: distributed {:?} vs centralized {expected:?}",
                        outcome.per_block[b_idx]
                    ),
                });
            }
        }
        Ok(CheckedRun {
            charged: schedule.rounds,
            executed: outcome.stats.rounds,
            bound: self.family.lemma2_bound(),
            messages: outcome.stats.messages,
        })
    }

    /// Theorem 2(i): distributed leader election must elect the same
    /// leaders as [`PartRouter::elect_leaders`] within `b(2L + 1)` rounds.
    ///
    /// # Errors
    ///
    /// Reports mismatches and bound violations.
    pub fn leader_election(&self) -> Result<CheckedRun> {
        let router = PartRouter::new(self.graph, self.tree, self.partition, self.shortcut);
        let scheduled = router.elect_leaders();
        let (leaders, stats) = part_leaders(self.graph, self.partition, &self.family, None)?;
        if leaders != scheduled.values {
            return Err(DistError::Mismatch {
                reason: format!(
                    "distributed leaders {leaders:?} vs scheduled {:?}",
                    scheduled.values
                ),
            });
        }
        let bound = self.theorem2_bound();
        Self::check_bound(stats, bound, "leader election")?;
        Ok(CheckedRun {
            charged: scheduled.rounds,
            executed: stats.rounds,
            bound,
            messages: stats.messages,
        })
    }

    /// Theorem 2(ii): the Boruvka min-edge primitive must equal the
    /// scheduled per-part aggregation within `b(2L + 1)` rounds. The
    /// scheduled cost charged is aggregation plus broadcast-back (the
    /// flood performs both at once).
    ///
    /// # Errors
    ///
    /// Reports mismatches and bound violations.
    ///
    /// # Panics
    ///
    /// Panics if `candidates.len()` differs from the graph's node count.
    pub fn min_edge(&self, candidates: &[Option<(u64, EdgeId)>]) -> Result<CheckedRun> {
        let router = PartRouter::new(self.graph, self.tree, self.partition, self.shortcut);
        let scheduled = router.aggregate_to_leaders(candidates, |a, b| *a.min(b));
        let (per_part, stats) =
            part_min_edges(self.graph, self.partition, &self.family, candidates, None)?;
        if per_part != scheduled.values {
            return Err(DistError::Mismatch {
                reason: format!(
                    "distributed min edges {per_part:?} vs scheduled {:?}",
                    scheduled.values
                ),
            });
        }
        let bound = self.theorem2_bound();
        Self::check_bound(stats, bound, "min-edge aggregation")?;
        Ok(CheckedRun {
            charged: scheduled.rounds + router.exchange_rounds() / 2,
            executed: stats.rounds,
            bound,
            messages: stats.messages,
        })
    }

    /// Lemma 3: the distributed block counting must classify every part
    /// exactly like the scheduled verification, report exact counts for
    /// good parts, and stay within `(3·threshold + 2)(2L + 1)` rounds.
    ///
    /// # Errors
    ///
    /// Reports mismatches and bound violations.
    pub fn block_counts(&self, threshold: usize) -> Result<CheckedRun> {
        let active = vec![true; self.partition.part_count()];
        let scheduled = verification(
            self.graph,
            self.tree,
            self.partition,
            self.shortcut,
            threshold,
            &active,
        );
        let simulated = verification_simulated(
            self.graph,
            self.tree,
            self.partition,
            self.shortcut,
            threshold,
            &active,
            None,
        )?;
        if simulated.outcome.good != scheduled.good {
            return Err(DistError::Mismatch {
                reason: format!(
                    "verification flags {:?} vs scheduled {:?} (threshold {threshold})",
                    simulated.outcome.good, scheduled.good
                ),
            });
        }
        for p in self.partition.parts() {
            if scheduled.good[p.index()]
                && simulated.outcome.block_counts[p.index()] != scheduled.block_counts[p.index()]
            {
                return Err(DistError::Mismatch {
                    reason: format!(
                        "part {p} count {} vs scheduled {}",
                        simulated.outcome.block_counts[p.index()],
                        scheduled.block_counts[p.index()]
                    ),
                });
            }
        }
        let window = 2 * self.family.schedule().rounds + 1;
        let bound = counting_supersteps(threshold) * window;
        Self::check_bound(simulated.stats, bound, "block counting")?;
        Ok(CheckedRun {
            charged: scheduled.rounds,
            executed: simulated.outcome.rounds,
            bound: bound + u64::from(self.tree.depth_of_tree()),
            messages: simulated.stats.messages,
        })
    }

    /// The operational Theorem 2 bound `b(2L + 1)`.
    pub fn theorem2_bound(&self) -> u64 {
        self.family.block_parameter().max(1) as u64 * (2 * self.family.schedule().rounds + 1)
    }

    /// Per-node min-edge candidates for a weighted instance — the input of
    /// a Boruvka phase on the current partition (delegates to
    /// [`crate::min_edge_candidates`]).
    pub fn boruvka_candidates(
        &self,
        weights: &lcs_graph::EdgeWeights,
    ) -> Vec<Option<(u64, EdgeId)>> {
        crate::min_edge_candidates(self.graph, self.partition, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_core::existential::ancestor_shortcut;
    use lcs_graph::{generators, EdgeWeights, NodeId};

    #[test]
    fn full_harness_on_a_grid() {
        let g = generators::grid(6, 6);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let p = generators::partitions::grid_columns(6, 6);
        let s = ancestor_shortcut(&g, &t, &p);
        let check = CrossCheck::new(&g, &t, &p, &s).unwrap();

        let ones: Vec<Option<u64>> = g.nodes().map(|v| p.part_of(v).map(|_| 1)).collect();
        let conv = check.convergecast(&ones, AggregateOp::Sum).unwrap();
        assert_eq!(conv.charged, conv.executed);

        let leaders = check.leader_election().unwrap();
        assert!(leaders.executed <= leaders.bound);

        let w = EdgeWeights::random_permutation(&g, 5);
        let candidates = check.boruvka_candidates(&w);
        let min_edge = check.min_edge(&candidates).unwrap();
        assert!(min_edge.executed <= min_edge.bound);

        let counts = check.block_counts(2).unwrap();
        assert!(counts.executed <= counts.bound);
    }

    #[test]
    fn harness_on_the_wheel() {
        let g = generators::wheel(33);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let p = generators::partitions::wheel_arcs(33, 4);
        let s = ancestor_shortcut(&g, &t, &p);
        let check = CrossCheck::new(&g, &t, &p, &s).unwrap();
        check.leader_election().unwrap();
        check.block_counts(1).unwrap();
    }
}
