//! Lemma 2 as message passing: part-parallel block convergecast and
//! convergecast + broadcast ("exchange") over a tree-restricted shortcut.
//!
//! [`block_convergecast`] aggregates one optional value per part member up
//! to each block's root, every block of the family in parallel, forwarding
//! with the `BlockRootDepth` priority. Because the greedy rule is exactly
//! the schedule `lcs_core::routing::convergecast_rounds` simulates
//! centrally, the executed round count *equals* the scheduled one (and is
//! therefore within the Lemma 2 bound `D + c`).
//!
//! [`block_exchange`] follows the convergecast with its time-reversed
//! broadcast, leaving every block node in possession of the block's
//! aggregate — the intra-block agreement step that one Theorem 2 superstep
//! performs — within `2L` rounds.

use lcs_congest::{primitives::AggregateOp, SimConfig, SimStats};
use lcs_graph::Graph;

use crate::engine::{run_engine, EngineSpec, NodeProgram};
use crate::knowledge::{BlockFamily, Membership, NodeInfo};
use crate::{DistError, Result};

/// Result of a family-wide cast.
#[derive(Debug, Clone)]
pub struct BlockCastOutcome {
    /// Aggregate per family block (`None` when no member carried a value).
    pub per_block: Vec<Option<u64>>,
    /// What each node's own-part block agreed on (`None` for nodes outside
    /// every active part, and for pure convergecasts at non-root nodes).
    pub member_view: Vec<Option<u64>>,
    /// Simulation statistics of the executed protocol.
    pub stats: SimStats,
}

/// One node's program: contribute the node's value to its own-part block,
/// combine with the aggregation operator, remember what was agreed.
#[derive(Debug, Clone)]
struct CastProgram {
    value: Option<u64>,
    op: AggregateOp,
    /// `(membership index, agreed)` pairs recorded by this node.
    agreed: Vec<(usize, Option<u64>)>,
    own_agreed: Option<u64>,
}

impl NodeProgram for CastProgram {
    type Val = Option<u64>;
    type Cross = ();

    fn contribution(&mut self, info: &NodeInfo, m: &Membership, _step: u64) -> Option<u64> {
        if info.own_membership == Some(member_index(info, m)) {
            self.value
        } else {
            None
        }
    }

    fn combine(&self, _step: u64, a: &Option<u64>, b: &Option<u64>) -> Option<u64> {
        match (a, b) {
            (Some(x), Some(y)) => Some(self.op.combine(*x, *y)),
            (Some(x), None) | (None, Some(x)) => Some(*x),
            (None, None) => None,
        }
    }

    fn on_agreed(&mut self, info: &NodeInfo, m: &Membership, val: &Option<u64>, _step: u64) {
        let idx = member_index(info, m);
        self.agreed.push((idx, *val));
        if info.own_membership == Some(idx) {
            self.own_agreed = *val;
        }
    }

    fn cross_message(
        &mut self,
        _info: &NodeInfo,
        _to: lcs_graph::NodeId,
        _step: u64,
    ) -> Option<()> {
        None
    }

    fn on_cross(&mut self, _info: &NodeInfo, _from: lcs_graph::NodeId, _msg: (), _step: u64) {}

    fn val_bits(&self) -> usize {
        1 + 64
    }

    fn cross_bits(&self) -> usize {
        1
    }
}

/// Index of membership `m` within `info.memberships`.
fn member_index(info: &NodeInfo, m: &Membership) -> usize {
    info.memberships
        .iter()
        .position(|x| x.block == m.block)
        .expect("membership belongs to this node")
}

fn run_cast(
    graph: &Graph,
    family: &BlockFamily,
    values: &[Option<u64>],
    op: AggregateOp,
    broadcast_down: bool,
    config: Option<SimConfig>,
) -> Result<BlockCastOutcome> {
    assert_eq!(
        values.len(),
        graph.node_count(),
        "one optional value per node is required"
    );
    let spec = EngineSpec {
        steps: 1,
        broadcast_down,
    };
    let obs = lcs_obs::Obs::off();
    let outcome = run_engine(graph, family, spec, config, &obs, |info: &NodeInfo| {
        CastProgram {
            value: values[info.node.index()],
            op,
            agreed: Vec::new(),
            own_agreed: None,
        }
    })?;

    let mut per_block = vec![None; family.blocks().len()];
    for (b_idx, block) in family.blocks().iter().enumerate() {
        let root_node = &outcome.nodes[block.root.index()];
        let info = family.info(block.root);
        let m_idx = info
            .memberships
            .iter()
            .position(|m| m.block == b_idx)
            .ok_or_else(|| DistError::ProtocolInvariant {
                reason: format!("block {b_idx} root lacks a membership"),
            })?;
        let agreed = root_node
            .program()
            .agreed
            .iter()
            .find(|(i, _)| *i == m_idx)
            .ok_or_else(|| DistError::ProtocolInvariant {
                reason: format!("block {b_idx} root never agreed"),
            })?;
        per_block[b_idx] = agreed.1;
    }
    let member_view = outcome
        .nodes
        .iter()
        .map(|n| n.program().own_agreed)
        .collect();
    Ok(BlockCastOutcome {
        per_block,
        member_view,
        stats: outcome.stats,
    })
}

/// Runs the Lemma 2 parallel convergecast as real message passing: one
/// optional `u64` per node, combined with `op` within each node's own-part
/// block, aggregate delivered to every block root.
///
/// The executed round count equals the exact centralized schedule length
/// ([`BlockFamily::schedule`]) and therefore respects `D + c`.
///
/// # Errors
///
/// Propagates simulator errors; reports a protocol invariant violation if
/// a block root ends without an aggregate.
///
/// # Panics
///
/// Panics if `values.len()` differs from the graph's node count.
pub fn block_convergecast(
    graph: &Graph,
    family: &BlockFamily,
    values: &[Option<u64>],
    op: AggregateOp,
    config: Option<SimConfig>,
) -> Result<BlockCastOutcome> {
    run_cast(graph, family, values, op, false, config)
}

/// Runs a full intra-block exchange — convergecast plus time-reversed
/// broadcast — leaving every node of every block with the block's
/// aggregate in `member_view`. Takes at most `2L ≤ 2(D + c)` rounds.
///
/// # Errors
///
/// Same as [`block_convergecast`].
///
/// # Panics
///
/// Panics if `values.len()` differs from the graph's node count.
pub fn block_exchange(
    graph: &Graph,
    family: &BlockFamily,
    values: &[Option<u64>],
    op: AggregateOp,
    config: Option<SimConfig>,
) -> Result<BlockCastOutcome> {
    run_cast(graph, family, values, op, true, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_core::existential::ancestor_shortcut;
    use lcs_core::TreeShortcut;
    use lcs_graph::{generators, NodeId, Partition, RootedTree};

    fn grid_setup(side: usize) -> (Graph, RootedTree, Partition) {
        let g = generators::grid(side, side);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let p = generators::partitions::grid_columns(side, side);
        (g, t, p)
    }

    #[test]
    fn convergecast_rounds_equal_the_exact_schedule() {
        let (g, t, p) = grid_setup(6);
        let s = ancestor_shortcut(&g, &t, &p);
        let family = BlockFamily::new(&g, &t, &p, &s);
        let ones: Vec<Option<u64>> = g.nodes().map(|v| p.part_of(v).map(|_| 1)).collect();
        let outcome = block_convergecast(&g, &family, &ones, AggregateOp::Sum, None).unwrap();
        assert_eq!(outcome.stats.rounds, family.schedule().rounds);
        assert!(outcome.stats.rounds <= family.lemma2_bound());
        // Each part is one block here, so the per-block sums are the part
        // sizes.
        for (b_idx, block) in family.blocks().iter().enumerate() {
            assert_eq!(
                outcome.per_block[b_idx],
                Some(p.members(block.part).len() as u64)
            );
        }
    }

    #[test]
    fn exchange_disseminates_the_aggregate_to_all_members() {
        let (g, t, p) = grid_setup(5);
        let s = ancestor_shortcut(&g, &t, &p);
        let family = BlockFamily::new(&g, &t, &p, &s);
        let ids: Vec<Option<u64>> = g
            .nodes()
            .map(|v| p.part_of(v).map(|_| v.index() as u64))
            .collect();
        let outcome = block_exchange(&g, &family, &ids, AggregateOp::Max, None).unwrap();
        assert!(outcome.stats.rounds <= 2 * family.schedule().rounds);
        for v in g.nodes() {
            if p.part_of(v).is_some() {
                let expected = family.info(v).own().map(|m| {
                    family.blocks()[m.block]
                        .nodes
                        .iter()
                        .filter(|&&u| p.part_of(u) == p.part_of(v))
                        .map(|u| u.index() as u64)
                        .max()
                        .unwrap()
                });
                assert_eq!(outcome.member_view[v.index()], expected);
            }
        }
    }

    #[test]
    fn empty_shortcut_casts_are_free() {
        let (g, t, p) = grid_setup(4);
        let s = TreeShortcut::empty(&g, &p);
        let family = BlockFamily::new(&g, &t, &p, &s);
        let ones: Vec<Option<u64>> = g.nodes().map(|_| Some(1)).collect();
        let outcome = block_convergecast(&g, &family, &ones, AggregateOp::Sum, None).unwrap();
        assert_eq!(outcome.stats.rounds, 0);
        assert!(outcome.per_block.iter().all(|v| *v == Some(1)));
    }

    #[test]
    #[should_panic(expected = "one optional value per node")]
    fn convergecast_validates_input_length() {
        let (g, t, p) = grid_setup(4);
        let s = ancestor_shortcut(&g, &t, &p);
        let family = BlockFamily::new(&g, &t, &p, &s);
        let _ = block_convergecast(&g, &family, &[None], AggregateOp::Sum, None);
    }
}
