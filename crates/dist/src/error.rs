//! Error type of the distributed protocol layer.

use std::error::Error;
use std::fmt;

use lcs_congest::SimError;

/// Errors raised by the distributed protocols and the cross-check harness.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DistError {
    /// The underlying CONGEST simulation failed (bandwidth violation,
    /// round-cap overflow, malformed send).
    Simulation(SimError),
    /// The distributed execution reached a state that violates a protocol
    /// invariant (for example part members disagreeing on a flooded
    /// minimum). This always indicates a protocol bug, never bad input.
    ProtocolInvariant {
        /// Human readable description.
        reason: String,
    },
    /// Distributed and centralized results disagree (reported by
    /// [`crate::CrossCheck`]).
    Mismatch {
        /// Human readable description.
        reason: String,
    },
    /// An executed round count exceeded the bound it must respect
    /// (reported by [`crate::CrossCheck`]).
    BoundViolation {
        /// Human readable description.
        reason: String,
    },
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Simulation(err) => write!(f, "simulation error: {err}"),
            DistError::ProtocolInvariant { reason } => {
                write!(f, "protocol invariant violated: {reason}")
            }
            DistError::Mismatch { reason } => {
                write!(f, "distributed/centralized mismatch: {reason}")
            }
            DistError::BoundViolation { reason } => write!(f, "round bound violated: {reason}"),
        }
    }
}

impl Error for DistError {}

impl From<SimError> for DistError {
    fn from(err: SimError) -> Self {
        DistError::Simulation(err)
    }
}

impl From<DistError> for lcs_core::CoreError {
    fn from(err: DistError) -> Self {
        lcs_core::CoreError::Simulation {
            reason: err.to_string(),
        }
    }
}

impl From<DistError> for lcs_graph::LcsError {
    fn from(err: DistError) -> Self {
        use lcs_graph::LcsError;
        match err {
            DistError::Simulation(sim) => sim.into(),
            other => LcsError::Protocol {
                reason: other.to_string(),
            },
        }
    }
}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DistError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let err: DistError = SimError::RoundLimitExceeded { limit: 9 }.into();
        assert!(err.to_string().contains("simulation error"));
        let core: lcs_core::CoreError = err.into();
        assert!(matches!(core, lcs_core::CoreError::Simulation { .. }));
        let err = DistError::Mismatch {
            reason: "x".to_string(),
        };
        assert!(err.to_string().contains("mismatch"));
    }
}
