//! Per-node local knowledge about the block family.
//!
//! The paper's Section 4.1 represents a tree-restricted shortcut
//! distributedly: every node knows which parts are assigned to its parent
//! edge. From that representation each node can derive, with an `O(D)`
//! preprocessing convergecast per block, everything the routing protocols
//! need locally: which blocks it belongs to, whether it is the block's root
//! (the unique block node whose parent edge is not in the block), its
//! children within each block, and the block root's depth (the Lemma 2
//! priority key). [`BlockFamily`] precomputes exactly this per-node view —
//! it stands in for that preprocessing, and the protocols built on it touch
//! *only* a node's own [`NodeInfo`] plus the messages it receives.

use lcs_core::routing::{
    convergecast_rounds, subtree_specs_from_blocks, RoutingPriority, RoutingSchedule,
};
use lcs_core::{BlockComponent, TreeShortcut};
use lcs_graph::{EdgeId, Graph, NodeId, PartId, Partition, RootedTree};

/// A node's role within one block of the family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Membership {
    /// Index of the block within the family (the Lemma 2 tie-break key).
    pub block: usize,
    /// The part the block belongs to.
    pub part: PartId,
    /// The block root (shallowest node; its id doubles as the block's
    /// globally unique identity in the counting protocols).
    pub root: NodeId,
    /// Depth of the block root in `T` (the Lemma 2 priority key).
    pub root_depth: u32,
    /// Whether this node is the block root.
    pub is_root: bool,
    /// The node's tree parent, when it lies inside the block (always
    /// `Some` unless this node is the block root).
    pub parent: Option<NodeId>,
    /// The node's tree children that lie inside the block.
    pub children: Vec<NodeId>,
}

/// Everything a single node knows locally when a protocol starts.
#[derive(Debug, Clone)]
pub struct NodeInfo {
    /// The node itself.
    pub node: NodeId,
    /// The node's part, if any.
    pub part: Option<PartId>,
    /// The blocks this node belongs to (as a part member or Steiner node).
    pub memberships: Vec<Membership>,
    /// Index into [`NodeInfo::memberships`] of the block of the node's own
    /// part (every part member lies in exactly one block of its part).
    pub own_membership: Option<usize>,
    /// `(neighbor, edge)` pairs towards graph neighbors in the same part —
    /// the edges over which the Theorem 2 supergraph steps exchange.
    pub part_neighbors: Vec<(NodeId, EdgeId)>,
}

impl NodeInfo {
    /// The node's membership in its own part's block, if it is a part
    /// member.
    pub fn own(&self) -> Option<&Membership> {
        self.own_membership.map(|i| &self.memberships[i])
    }
}

/// The block family of a tree-restricted shortcut, with the per-node local
/// views all protocols run on, plus the family's exact Lemma 2 schedule
/// (used both to size the superstep windows and as the charged-cost
/// reference in cross-checks).
#[derive(Debug, Clone)]
pub struct BlockFamily {
    blocks: Vec<BlockComponent>,
    schedule: RoutingSchedule,
    node_info: Vec<NodeInfo>,
    block_parameter: usize,
    tree_depth: u32,
}

impl BlockFamily {
    /// Builds the family over every part of the partition.
    pub fn new(
        graph: &Graph,
        tree: &RootedTree,
        partition: &Partition,
        shortcut: &TreeShortcut,
    ) -> Self {
        let active = vec![true; partition.part_count()];
        Self::new_active(graph, tree, partition, shortcut, &active)
    }

    /// Builds the family restricted to the active parts (the verification
    /// subroutine only routes over the blocks of the parts still under
    /// construction).
    ///
    /// # Panics
    ///
    /// Panics if `active.len()` differs from the partition's part count.
    pub fn new_active(
        graph: &Graph,
        tree: &RootedTree,
        partition: &Partition,
        shortcut: &TreeShortcut,
        active: &[bool],
    ) -> Self {
        assert_eq!(
            active.len(),
            partition.part_count(),
            "one active flag per part is required"
        );
        // Flatten per-part blocks in partition order — the exact family
        // ordering `PartRouter` and `verification` use, so schedule lengths
        // and tie-breaks agree bit for bit. The bulk accessor shares one
        // epoch-stamped scratch across the whole partition.
        let mut blocks: Vec<BlockComponent> = Vec::new();
        let mut block_parameter = 0usize;
        for part_blocks in shortcut.active_block_components(graph, tree, partition, active) {
            block_parameter = block_parameter.max(part_blocks.len());
            blocks.extend(part_blocks);
        }

        let schedule = convergecast_rounds(
            tree,
            &subtree_specs_from_blocks(&blocks),
            RoutingPriority::BlockRootDepth,
        );

        let mut node_info: Vec<NodeInfo> = graph
            .nodes()
            .map(|v| NodeInfo {
                node: v,
                part: partition.part_of(v).filter(|p| active[p.index()]),
                memberships: Vec::new(),
                own_membership: None,
                part_neighbors: Vec::new(),
            })
            .collect();

        for (idx, block) in blocks.iter().enumerate() {
            for &v in &block.nodes {
                let parent = tree.parent(v).filter(|p| block.contains(*p));
                let children: Vec<NodeId> = tree
                    .children(v)
                    .iter()
                    .copied()
                    .filter(|c| block.contains(*c))
                    .collect();
                let info = &mut node_info[v.index()];
                if info.part == Some(block.part) {
                    info.own_membership = Some(info.memberships.len());
                }
                info.memberships.push(Membership {
                    block: idx,
                    part: block.part,
                    root: block.root,
                    root_depth: block.root_depth,
                    is_root: v == block.root,
                    parent,
                    children,
                });
            }
        }

        for v in graph.nodes() {
            let Some(part) = node_info[v.index()].part else {
                continue;
            };
            let same_part: Vec<(NodeId, EdgeId)> = graph
                .neighbors(v)
                .filter(|&(u, _)| node_info[u.index()].part == Some(part))
                .collect();
            node_info[v.index()].part_neighbors = same_part;
        }

        BlockFamily {
            blocks,
            schedule,
            node_info,
            block_parameter,
            tree_depth: tree.depth_of_tree(),
        }
    }

    /// The flattened block family.
    pub fn blocks(&self) -> &[BlockComponent] {
        &self.blocks
    }

    /// The exact Lemma 2 convergecast schedule of the family (its `rounds`
    /// is the window half-length `L`; its `max_edge_load` is the measured
    /// congestion `c`).
    pub fn schedule(&self) -> RoutingSchedule {
        self.schedule
    }

    /// The block parameter `b` of the (active part of the) shortcut.
    pub fn block_parameter(&self) -> usize {
        self.block_parameter
    }

    /// Depth of the spanning tree the family lives on.
    pub fn tree_depth(&self) -> u32 {
        self.tree_depth
    }

    /// The Lemma 2 round bound `D + c` for one parallel convergecast.
    pub fn lemma2_bound(&self) -> u64 {
        u64::from(self.tree_depth) + self.schedule.max_edge_load as u64
    }

    /// One node's local view.
    pub fn info(&self, v: NodeId) -> &NodeInfo {
        &self.node_info[v.index()]
    }

    /// Number of nodes the family is defined over.
    pub fn node_count(&self) -> usize {
        self.node_info.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_core::existential::ancestor_shortcut;
    use lcs_graph::generators;

    fn grid_setup() -> (Graph, RootedTree, Partition) {
        let g = generators::grid(5, 5);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let p = generators::partitions::grid_columns(5, 5);
        (g, t, p)
    }

    #[test]
    fn family_matches_centralized_block_structure() {
        let (g, t, p) = grid_setup();
        let s = ancestor_shortcut(&g, &t, &p);
        let family = BlockFamily::new(&g, &t, &p, &s);
        assert_eq!(family.block_parameter(), s.block_parameter(&g, &p));
        let total: usize = p
            .parts()
            .map(|q| s.block_components(&g, &t, &p, q).len())
            .sum();
        assert_eq!(family.blocks().len(), total);
    }

    #[test]
    fn memberships_are_locally_consistent() {
        let (g, t, p) = grid_setup();
        let s = ancestor_shortcut(&g, &t, &p);
        let family = BlockFamily::new(&g, &t, &p, &s);
        for v in g.nodes() {
            let info = family.info(v);
            assert_eq!(info.node, v);
            // Every part member has exactly one own-part membership.
            if info.part.is_some() {
                let own = info.own().expect("members lie in an own-part block");
                assert_eq!(Some(own.part), info.part);
            }
            for m in &info.memberships {
                let block = &family.blocks()[m.block];
                assert!(block.contains(v));
                assert_eq!(m.is_root, v == block.root);
                if !m.is_root {
                    let parent = m.parent.expect("non-root block nodes have parents");
                    assert!(block.contains(parent));
                    assert_eq!(t.parent(v), Some(parent));
                }
                for &c in &m.children {
                    assert_eq!(t.parent(c), Some(v));
                    assert!(block.contains(c));
                }
            }
            for &(u, e) in &info.part_neighbors {
                assert_eq!(p.part_of(u), p.part_of(v));
                assert!(g.edge_between(v, u) == Some(e));
            }
        }
    }

    #[test]
    fn inactive_parts_are_excluded() {
        let (g, t, p) = grid_setup();
        let s = ancestor_shortcut(&g, &t, &p);
        let mut active = vec![true; p.part_count()];
        active[0] = false;
        let family = BlockFamily::new_active(&g, &t, &p, &s, &active);
        for block in family.blocks() {
            assert_ne!(block.part, PartId::new(0));
        }
        // Members of the inactive part have no part in this family's view.
        for &v in p.members(PartId::new(0)) {
            assert_eq!(family.info(v).part, None);
        }
    }

    #[test]
    fn empty_shortcut_gives_singleton_blocks_and_zero_schedule() {
        let (g, t, p) = grid_setup();
        let s = TreeShortcut::empty(&g, &p);
        let family = BlockFamily::new(&g, &t, &p, &s);
        assert_eq!(family.blocks().len(), g.node_count());
        assert_eq!(family.schedule().rounds, 0);
        assert_eq!(family.block_parameter(), 5);
    }
}
