//! The windowed superstep engine.
//!
//! Every protocol in this crate shares one communication skeleton, the
//! Theorem 2 *superstep*:
//!
//! 1. a Lemma 2 parallel convergecast over every block of the family — in
//!    each round every node forwards, among the blocks for which it has
//!    already heard from all of its in-block children, the one whose block
//!    root is shallowest (ties by block index), exactly the priority rule
//!    the lemma proves completes within `D + c` rounds;
//! 2. the *time-reversal* of that convergecast as the broadcast that
//!    disseminates each block's combined value to all of its nodes: if a
//!    child's upward message arrived over a tree edge in relative round
//!    `r`, the parent sends the agreed value back down over the same edge
//!    in relative round `2L - r`. Reversing a feasible schedule is
//!    feasible, so the broadcast also completes within `L` rounds;
//! 3. one round of exchange over same-part graph edges (the supergraph
//!    step of Theorem 2).
//!
//! Windows have a fixed length `W = 2L + 1`, where `L` is the family's
//! exact Lemma 2 schedule length — a quantity every node can obtain in the
//! `O(D)` preprocessing the paper assumes (see `knowledge`). Because the
//! greedy convergecast provably completes within `L` and the reversed
//! broadcast reuses its delivery times, windows never overflow; the engine
//! panics loudly if a protocol bug makes one.
//!
//! Protocols plug in a [`NodeProgram`] describing what is combined
//! intra-block and what is exchanged across part edges; the engine turns it
//! into a [`NodeProtocol`] and runs it in the CONGEST simulator with the
//! per-edge bandwidth enforced on every message.

use lcs_congest::{
    bits_for_count, Incoming, MessageBits, NodeContext, NodeProtocol, Outgoing, SimConfig,
    SimOutcome, Simulator,
};
use lcs_graph::{Graph, NodeId};
use lcs_obs::Obs;

use crate::knowledge::{BlockFamily, Membership, NodeInfo};
use crate::Result;

/// The per-node logic of a superstep protocol. One instance runs per node;
/// it may only consult the node's [`NodeInfo`] and the messages the engine
/// hands it.
pub(crate) trait NodeProgram: Send {
    /// Block-level value: convergecast up, combined, broadcast down.
    type Val: Clone + std::fmt::Debug + Send;
    /// Payload exchanged across same-part graph edges between supersteps.
    type Cross: Clone + std::fmt::Debug + Send;

    /// The node's contribution for membership `m` at the start of superstep
    /// `step` (Steiner nodes contribute an identity element).
    fn contribution(&mut self, info: &NodeInfo, m: &Membership, step: u64) -> Self::Val;
    /// Associative, commutative combination of contributions.
    fn combine(&self, step: u64, a: &Self::Val, b: &Self::Val) -> Self::Val;
    /// The node learned its block's combined value for superstep `step`.
    fn on_agreed(&mut self, info: &NodeInfo, m: &Membership, val: &Self::Val, step: u64);
    /// The cross message to send to same-part neighbor `to` after superstep
    /// `step`, or `None` to stay silent on that edge.
    fn cross_message(&mut self, info: &NodeInfo, to: NodeId, step: u64) -> Option<Self::Cross>;
    /// A cross message from `from`, sent after superstep `step`.
    fn on_cross(&mut self, info: &NodeInfo, from: NodeId, msg: Self::Cross, step: u64);
    /// Declared encoded size of a block value in bits.
    fn val_bits(&self) -> usize;
    /// Declared encoded size of a cross payload in bits.
    fn cross_bits(&self) -> usize;
}

/// Engine message: two tag bits distinguish the three payload kinds; block
/// ids are `⌈log₂ |family|⌉` bits. In fault mode every message also
/// carries its sender's superstep (`⌈log₂ steps⌉` extra bits) so that a
/// duplicated copy straggling across a window boundary is recognized as
/// stale and dropped; in fault-free runs the tag is always the receiver's
/// own step and costs no bits.
#[derive(Debug, Clone)]
pub(crate) struct EngineMsg<V, C> {
    payload: Payload<V, C>,
    bits: usize,
    step: u32,
}

#[derive(Debug, Clone)]
enum Payload<V, C> {
    Up { block: u32, val: V },
    Down { block: u32, val: V },
    Cross(C),
}

impl<V: Clone, C: Clone> MessageBits for EngineMsg<V, C> {
    fn size_bits(&self) -> usize {
        self.bits
    }
}

/// Per-membership state of the current superstep's convergecast/broadcast.
#[derive(Debug, Clone)]
struct Run<V> {
    pending: usize,
    acc: Option<V>,
    sent_up: bool,
    agreed: Option<V>,
    /// `(child, relative delivery round)` of this superstep's upward
    /// messages — the broadcast sends down over the same edges at the
    /// mirrored rounds. In fault mode it doubles as the heard-from set
    /// that deduplicates duplicated upward copies.
    child_rel: Vec<(NodeId, u64)>,
    /// Fault mode only: which children have received their first downward
    /// copy (indexed like `Membership::children`; empty in fault-free
    /// runs, where the time-reversed mirror schedule is used instead).
    downs_sent: Vec<bool>,
}

/// How many supersteps to run and whether block values are broadcast back
/// down (single-shot convergecasts skip the broadcast half).
#[derive(Debug, Clone, Copy)]
pub(crate) struct EngineSpec {
    pub steps: u64,
    pub broadcast_down: bool,
}

/// Fault mode sends every cross payload at each poll of the cross slot,
/// and the slot is widened to this many `s`-round spans so that a payload
/// whose every copy must be lost for a wrong answer gets several
/// independent copies per superstep (the residual failure probability is
/// `ε^(copies)` per edge instead of `ε`).
pub(crate) const CROSS_REDUNDANCY: u64 = 3;

/// Fault-mode window length for stretched schedule length `l_f` and
/// per-hop span `s`: `[tree slot 2·l_f | cross slot 3·s | guard band s]`.
pub(crate) fn faulty_window(l_f: u64, s: u64) -> u64 {
    2 * l_f + (CROSS_REDUNDANCY + 1) * s
}

/// Exact number of rounds an engine execution takes: `steps` windows minus
/// the trailing cross round of the last superstep (and minus the broadcast
/// half when disabled).
pub(crate) fn engine_rounds(l: u64, spec: EngineSpec) -> u64 {
    if spec.steps == 0 {
        return 0;
    }
    let window = 2 * l + 1;
    let last = if spec.broadcast_down { 2 * l } else { l };
    (spec.steps - 1) * window + last
}

/// The engine as a per-node CONGEST protocol.
#[derive(Debug)]
pub(crate) struct EngineNode<P: NodeProgram> {
    program: P,
    info: NodeInfo,
    l: u64,
    window: u64,
    steps: u64,
    total_rounds: u64,
    broadcast_down: bool,
    up_bits: usize,
    cross_msg_bits: usize,
    step: u64,
    runs: Vec<Run<P::Val>>,
    finished: bool,
    /// Fault mode: tolerate delayed/lost/duplicated deliveries. `l` is the
    /// latency-stretched schedule length, the window layout changes to
    /// `[tree slot 2l | cross slot 3s | guard band s]`, and emissions are
    /// driven by observed progress with per-poll resends instead of the
    /// exact mirror schedule.
    faulty: bool,
    /// The cross-slot length `s` (the plan's worst-case per-hop stretch);
    /// 1 in fault-free runs.
    cross_span: u64,
}

impl<P: NodeProgram> EngineNode<P> {
    /// The plugged-in program, for result extraction after the run.
    pub fn program(&self) -> &P {
        &self.program
    }

    fn base(&self) -> u64 {
        self.step * self.window
    }

    fn start_superstep(&mut self) {
        let step = self.step;
        let faulty = self.faulty;
        self.runs.clear();
        for (i, m) in self.info.memberships.iter().enumerate() {
            let contribution = self.program.contribution(&self.info, m, step);
            self.runs.push(Run {
                pending: m.children.len(),
                acc: Some(contribution),
                sent_up: false,
                agreed: None,
                child_rel: Vec::new(),
                downs_sent: if faulty {
                    vec![false; m.children.len()]
                } else {
                    Vec::new()
                },
            });
            // Childless roots agree immediately.
            if m.is_root && m.children.is_empty() {
                let val = self.runs[i].acc.clone().expect("contribution just set");
                self.runs[i].agreed = Some(val.clone());
                self.program.on_agreed(&self.info, m, &val, step);
            }
        }
    }

    fn handle_up(&mut self, from: NodeId, block: u32, val: P::Val, round: u64) {
        let step = self.step;
        let idx = self
            .info
            .memberships
            .iter()
            .position(|m| m.block == block as usize)
            .expect("upward messages only arrive within a block");
        let rel = round - self.base();
        if self.faulty {
            // Duplicated copies and spurious ups (e.g. from a restarted
            // child re-running its protocol) are dropped instead of
            // tripping the fault-free invariants below.
            let run = &self.runs[idx];
            if run.pending == 0 || run.child_rel.iter().any(|&(c, _)| c == from) {
                return;
            }
        } else {
            debug_assert!(rel >= 1 && rel <= self.l, "up delivery outside conv slot");
        }
        let run = &mut self.runs[idx];
        let acc = run.acc.take().expect("superstep started");
        run.acc = Some(self.program.combine(step, &acc, &val));
        run.pending = run
            .pending
            .checked_sub(1)
            .expect("no more child messages than children");
        run.child_rel.push((from, rel));
        let m = &self.info.memberships[idx];
        if m.is_root && run.pending == 0 {
            let agreed = run.acc.clone().expect("set above");
            run.agreed = Some(agreed.clone());
            self.program.on_agreed(&self.info, m, &agreed, step);
        }
    }

    fn handle_down(&mut self, block: u32, val: P::Val) {
        let idx = self
            .info
            .memberships
            .iter()
            .position(|m| m.block == block as usize)
            .expect("downward messages only arrive within a block");
        if self.faulty && self.runs[idx].agreed.is_some() {
            return; // duplicated or resent copy — already agreed
        }
        let step = self.step;
        self.runs[idx].agreed = Some(val.clone());
        self.program
            .on_agreed(&self.info, &self.info.memberships[idx], &val, step);
    }

    fn emissions(&mut self, round: u64) -> Vec<Outgoing<EngineMsg<P::Val, P::Cross>>> {
        let mut out = Vec::new();
        let base = self.base();

        // Convergecast slot: forward the highest-priority ready block.
        if round >= base && round < base + self.l {
            let pick = self
                .info
                .memberships
                .iter()
                .enumerate()
                .filter(|(i, m)| !m.is_root && !self.runs[*i].sent_up && self.runs[*i].pending == 0)
                .min_by_key(|(_, m)| (m.root_depth, m.block));
            if let Some((i, m)) = pick {
                let parent = m.parent.expect("non-root memberships have parents");
                let val = self.runs[i].acc.clone().expect("superstep started");
                let block = m.block as u32;
                self.runs[i].sent_up = true;
                out.push(Outgoing::new(
                    parent,
                    EngineMsg {
                        payload: Payload::Up { block, val },
                        bits: self.up_bits,
                        step: self.step as u32,
                    },
                ));
            }
        }

        // Broadcast slot: mirror this superstep's upward deliveries.
        if self.broadcast_down && self.l > 0 && round >= base + self.l && round < base + 2 * self.l
        {
            for (i, m) in self.info.memberships.iter().enumerate() {
                for &(child, rel) in &self.runs[i].child_rel {
                    if round == base + 2 * self.l - rel {
                        let val = self.runs[i].agreed.clone().unwrap_or_else(|| {
                            panic!("broadcast window overflow in block {}", m.block)
                        });
                        out.push(Outgoing::new(
                            child,
                            EngineMsg {
                                payload: Payload::Down {
                                    block: m.block as u32,
                                    val,
                                },
                                bits: self.up_bits,
                                step: self.step as u32,
                            },
                        ));
                    }
                }
            }
        }

        // Cross round: the supergraph step, skipped after the last superstep.
        if self.broadcast_down && round == base + 2 * self.l && self.step + 1 < self.steps {
            let step = self.step;
            for &(to, _) in &self.info.part_neighbors.clone() {
                if let Some(msg) = self.program.cross_message(&self.info, to, step) {
                    out.push(Outgoing::new(
                        to,
                        EngineMsg {
                            payload: Payload::Cross(msg),
                            bits: self.cross_msg_bits,
                            step: self.step as u32,
                        },
                    ));
                }
            }
        }

        out
    }

    /// Fault-mode emissions: the window is laid out as
    /// `[tree slot 2l | cross slot 3s | guard band s]` and scheduling is
    /// driven by observed progress instead of the exact mirror schedule.
    /// Per poll, each neighbor receives at most one tree message — a
    /// first-time Up under the greedy priority rule, then first-time
    /// Downs, then resends of already-sent copies rotated across blocks —
    /// so a lost copy is retried at every later poll of the slot and the
    /// per-edge CONGEST budget is never exceeded. Receivers deduplicate.
    /// Crosses are sent at every poll of the cross slot; the guard band
    /// absorbs the worst per-hop delay `(1 + latency) + (period - 1) ≤ s`,
    /// so every delivery lands before the next window boundary.
    fn emissions_faulty(&mut self, round: u64) -> Vec<Outgoing<EngineMsg<P::Val, P::Cross>>> {
        let mut out = Vec::new();
        let base = self.base();
        let tree_end = base + 2 * self.l;
        let step_tag = self.step as u32;

        if round >= base && round < tree_end {
            let mut used: Vec<NodeId> = Vec::new();
            // First-time Up: one per poll, by the greedy priority rule.
            let pick = self
                .info
                .memberships
                .iter()
                .enumerate()
                .filter(|(i, m)| !m.is_root && !self.runs[*i].sent_up && self.runs[*i].pending == 0)
                .min_by_key(|(_, m)| (m.root_depth, m.block));
            if let Some((i, m)) = pick {
                let parent = m.parent.expect("non-root memberships have parents");
                let val = self.runs[i].acc.clone().expect("superstep started");
                let block = m.block as u32;
                self.runs[i].sent_up = true;
                used.push(parent);
                out.push(Outgoing::new(
                    parent,
                    EngineMsg {
                        payload: Payload::Up { block, val },
                        bits: self.up_bits,
                        step: step_tag,
                    },
                ));
            }
            // First-time Downs: at most one per child edge per poll.
            if self.broadcast_down {
                for i in 0..self.info.memberships.len() {
                    if self.runs[i].agreed.is_none() {
                        continue;
                    }
                    let m = &self.info.memberships[i];
                    for (ci, &child) in m.children.iter().enumerate() {
                        if self.runs[i].downs_sent[ci] || used.contains(&child) {
                            continue;
                        }
                        self.runs[i].downs_sent[ci] = true;
                        used.push(child);
                        let val = self.runs[i].agreed.clone().expect("checked above");
                        out.push(Outgoing::new(
                            child,
                            EngineMsg {
                                payload: Payload::Down {
                                    block: m.block as u32,
                                    val,
                                },
                                bits: self.up_bits,
                                step: step_tag,
                            },
                        ));
                    }
                }
            }
            // Resends on whatever edges are still free, rotated across
            // memberships so no block starves a shared edge.
            let k = self.info.memberships.len();
            if k > 0 {
                let start = (round as usize) % k;
                for d in 0..k {
                    let i = (start + d) % k;
                    let m = &self.info.memberships[i];
                    if !m.is_root && self.runs[i].sent_up && self.runs[i].pending == 0 {
                        let parent = m.parent.expect("non-root memberships have parents");
                        if !used.contains(&parent) {
                            used.push(parent);
                            let val = self.runs[i].acc.clone().expect("superstep started");
                            out.push(Outgoing::new(
                                parent,
                                EngineMsg {
                                    payload: Payload::Up {
                                        block: m.block as u32,
                                        val,
                                    },
                                    bits: self.up_bits,
                                    step: step_tag,
                                },
                            ));
                        }
                    }
                    if self.broadcast_down && self.runs[i].agreed.is_some() {
                        for (ci, &child) in m.children.iter().enumerate() {
                            if self.runs[i].downs_sent[ci] && !used.contains(&child) {
                                used.push(child);
                                let val = self.runs[i].agreed.clone().expect("checked above");
                                out.push(Outgoing::new(
                                    child,
                                    EngineMsg {
                                        payload: Payload::Down {
                                            block: m.block as u32,
                                            val,
                                        },
                                        bits: self.up_bits,
                                        step: step_tag,
                                    },
                                ));
                            }
                        }
                    }
                }
            }
        }

        // Cross slot: resend at every poll (the program decides per call
        // what to send; receivers deduplicate).
        if self.broadcast_down
            && round >= tree_end
            && round < tree_end + CROSS_REDUNDANCY * self.cross_span
            && self.step + 1 < self.steps
        {
            let step = self.step;
            for &(to, _) in &self.info.part_neighbors.clone() {
                if let Some(msg) = self.program.cross_message(&self.info, to, step) {
                    out.push(Outgoing::new(
                        to,
                        EngineMsg {
                            payload: Payload::Cross(msg),
                            bits: self.cross_msg_bits,
                            step: step_tag,
                        },
                    ));
                }
            }
        }

        out
    }
}

impl<P: NodeProgram> NodeProtocol for EngineNode<P> {
    type Message = EngineMsg<P::Val, P::Cross>;

    fn init(&mut self, _ctx: &NodeContext) -> Vec<Outgoing<Self::Message>> {
        if self.steps == 0 {
            self.finished = true;
            return Vec::new();
        }
        self.start_superstep();
        self.finished = self.total_rounds == 0;
        if self.faulty {
            self.emissions_faulty(0)
        } else {
            self.emissions(0)
        }
    }

    fn on_round(
        &mut self,
        _ctx: &NodeContext,
        round: u64,
        incoming: &[Incoming<Self::Message>],
    ) -> Vec<Outgoing<Self::Message>> {
        if self.steps == 0 {
            return Vec::new();
        }
        if self.faulty {
            // Catch up on window boundaries first (deliveries always land
            // strictly before their window's boundary, so nothing here can
            // belong to an earlier step), then apply arrivals immediately:
            // crosses are in-window under the guard band, and anything
            // tagged with another step is a stale duplicate.
            while self.step + 1 < self.steps && round >= (self.step + 1) * self.window {
                self.step += 1;
                self.start_superstep();
            }
            let step = self.step;
            for msg in incoming {
                if msg.msg.step != step as u32 {
                    continue;
                }
                match &msg.msg.payload {
                    Payload::Up { block, val } => {
                        self.handle_up(msg.from, *block, val.clone(), round)
                    }
                    Payload::Down { block, val } => self.handle_down(*block, val.clone()),
                    Payload::Cross(c) => {
                        self.program.on_cross(&self.info, msg.from, c.clone(), step)
                    }
                }
            }
            if round >= self.total_rounds {
                self.finished = true;
            }
            return self.emissions_faulty(round);
        }
        // Deliver tree-cast messages of the current superstep; stash the
        // cross messages, which arrive exactly at window boundaries.
        let mut crosses: Vec<(NodeId, P::Cross)> = Vec::new();
        for msg in incoming {
            match &msg.msg.payload {
                Payload::Up { block, val } => self.handle_up(msg.from, *block, val.clone(), round),
                Payload::Down { block, val } => self.handle_down(*block, val.clone()),
                Payload::Cross(c) => crosses.push((msg.from, c.clone())),
            }
        }
        // Window boundary: fold in the crosses, then open the next window.
        if self.step + 1 < self.steps && round == (self.step + 1) * self.window {
            let step = self.step;
            for (from, c) in crosses {
                self.program.on_cross(&self.info, from, c, step);
            }
            self.step += 1;
            self.start_superstep();
        } else {
            debug_assert!(crosses.is_empty(), "cross message outside a boundary round");
        }
        if round >= self.total_rounds {
            self.finished = true;
        }
        self.emissions(round)
    }

    fn is_done(&self) -> bool {
        self.finished
    }

    /// The engine knows every round at which a node may act without first
    /// receiving a message: the convergecast slot while it has a ready
    /// block, the mirrored rounds of the ups it has already received, the
    /// cross round at the end of the window, the next window boundary, and
    /// the round that flips `finished`. Everything else is message-driven,
    /// so the node sleeps through it — this is what turns the windowed
    /// supersteps into a small-frontier workload for the simulator.
    fn next_wake(&self, now: u64) -> Option<u64> {
        if self.steps == 0 {
            return None;
        }
        if self.faulty {
            // Re-derived from *observed* progress: anything sendable keeps
            // the node on the per-round schedule (that is the resend
            // engine); otherwise sleep to the cross slot, the next window
            // boundary, or the finish flip. Message arrivals wake the node
            // regardless, and the fault layer aligns every wake to the
            // node's straggler poll schedule.
            let base = self.base();
            let tree_end = base + 2 * self.l;
            let sendable = self.info.memberships.iter().enumerate().any(|(i, m)| {
                (!m.is_root && self.runs[i].pending == 0)
                    || (self.broadcast_down
                        && self.runs[i].agreed.is_some()
                        && !m.children.is_empty())
            });
            if sendable && now < tree_end {
                return None;
            }
            let mut wake = self.total_rounds.max(now + 1);
            if self.broadcast_down
                && self.step + 1 < self.steps
                && !self.info.part_neighbors.is_empty()
                && now + 1 < tree_end + CROSS_REDUNDANCY * self.cross_span
            {
                let r = tree_end.max(now + 1);
                if r == now + 1 {
                    return None;
                }
                wake = wake.min(r);
            }
            if self.step + 1 < self.steps {
                wake = wake.min((self.step + 1) * self.window);
            }
            return Some(wake);
        }
        // A ready block must be forwarded under the greedy priority rule as
        // soon as the next round: stay on the per-round schedule.
        let ready = self
            .info
            .memberships
            .iter()
            .enumerate()
            .any(|(i, m)| !m.is_root && !self.runs[i].sent_up && self.runs[i].pending == 0);
        if ready {
            return None;
        }
        let base = self.base();
        // The finish flip is the fallback: every unfinished node must be
        // polled once at `total_rounds` to quiesce.
        let mut wake = self.total_rounds.max(now + 1);
        if self.broadcast_down && self.l > 0 {
            for run in &self.runs {
                for &(_, rel) in &run.child_rel {
                    let r = base + 2 * self.l - rel;
                    if r > now {
                        wake = wake.min(r);
                    }
                }
            }
        }
        if self.broadcast_down && self.step + 1 < self.steps && !self.info.part_neighbors.is_empty()
        {
            let r = base + 2 * self.l;
            if r > now {
                wake = wake.min(r);
            }
        }
        if self.step + 1 < self.steps {
            let r = (self.step + 1) * self.window;
            if r > now {
                wake = wake.min(r);
            }
        }
        Some(wake)
    }
}

/// Runs `program` (one instance per node, built by `make`) over the family
/// in the CONGEST simulator.
///
/// The simulator configuration defaults to [`SimConfig::for_graph`] with
/// the round cap tightened to the engine's exact round count — multi-phase
/// protocols must never inherit the generic `64·n + 1024` cap silently.
/// Pass `config` to override (e.g. to enable tracing or change bandwidth);
/// an explicit `max_rounds` in the override is respected.
pub(crate) fn run_engine<P, F>(
    graph: &Graph,
    family: &BlockFamily,
    spec: EngineSpec,
    config: Option<SimConfig>,
    obs: &Obs,
    mut make: F,
) -> Result<SimOutcome<EngineNode<P>>>
where
    P: NodeProgram,
    F: FnMut(&NodeInfo) -> P,
{
    let l = family.schedule().rounds;
    // Fault mode stretches the whole schedule by the plan's worst per-hop
    // cost `s = (1 + max latency) · straggler period`: the tree slot gets
    // `2·(l+1)·s` rounds, the cross slot `3·s` rounds, and a final
    // `s`-round guard band keeps every delivery inside its window. This is also
    // where the round budget scales with the plan — callers' caps are
    // raised below, so latency inflation alone can never produce a
    // spurious `RoundLimitExceeded`.
    let plan = config.as_ref().and_then(|c| c.active_fault());
    let faulty = plan.is_some();
    let (l_eff, window, total_rounds, cross_span) = match plan {
        Some(p) => {
            let s = p.round_stretch().max(1);
            let lf = (l + 1) * s;
            let w = faulty_window(lf, s);
            (lf, w, spec.steps * w, s)
        }
        None => (l, 2 * l + 1, engine_rounds(l, spec), 1),
    };
    // A caller-supplied config customizes bandwidth, tracing and the engine
    // thread count, but the round cap is this entry point's responsibility:
    // the windowed superstep budget is computed exactly here, so a default
    // (or too-small) caller cap is raised to it rather than producing a
    // spurious RoundLimitExceeded. An explicitly larger caller cap is kept.
    let cfg = match config {
        Some(c) if c.max_rounds >= total_rounds + 2 => c,
        Some(c) => c.with_max_rounds(total_rounds + 2),
        None => SimConfig::for_graph(graph).with_max_rounds(total_rounds + 2),
    };
    let block_bits = bits_for_count(family.blocks().len().max(2));
    if obs.is_on() {
        obs.counter_add("dist/engine/runs", 1);
        obs.counter_add("dist/engine/supersteps", spec.steps);
        obs.gauge_set("dist/engine/window", window);
    }
    let step_bits = if faulty {
        bits_for_count((spec.steps as usize).max(2))
    } else {
        0
    };
    let sim = Simulator::new(graph, cfg).with_recorder(obs.clone());
    let outcome = sim.run(|ctx| {
        let info = family.info(ctx.node).clone();
        let program = make(&info);
        let up_bits = 2 + block_bits + step_bits + program.val_bits();
        let cross_msg_bits = 2 + step_bits + program.cross_bits();
        EngineNode {
            program,
            info,
            l: l_eff,
            window,
            steps: spec.steps,
            total_rounds,
            broadcast_down: spec.broadcast_down,
            up_bits,
            cross_msg_bits,
            step: 0,
            runs: Vec::new(),
            finished: false,
            faulty,
            cross_span,
        }
    })?;
    debug_assert!(faulty || outcome.stats.rounds <= total_rounds);
    Ok(outcome)
}
