//! Golden simulation statistics for the distributed protocols, pinning the
//! simulator's edge-slot mailbox rewrite and the engine's timed wake-ups.
//!
//! The values were captured by running the identical protocols against the
//! pre-refactor implementation (per-recipient `Vec` mailboxes, every node
//! polled every round), which the rewrite deleted. Rounds, message counts,
//! bit counts, and the computed results must all be byte-identical — the
//! flat-memory hot paths change wall-clock speed, never semantics.

use lcs_congest::primitives::AggregateOp;
use lcs_core::existential::ancestor_shortcut;
use lcs_dist::{
    block_convergecast, part_flood_min, part_leaders, verification_simulated, BlockFamily,
};
use lcs_graph::{generators, NodeId, RootedTree};

#[test]
fn golden_part_leaders_on_wheel() {
    let g = generators::wheel(33);
    let t = RootedTree::bfs(&g, NodeId::new(0));
    let part = generators::partitions::wheel_arcs(33, 4);
    let s = ancestor_shortcut(&g, &t, &part);
    let family = BlockFamily::new(&g, &t, &part, &s);
    let (leaders, stats) = part_leaders(&g, &part, &family, None).unwrap();
    let ids: Vec<usize> = leaders.iter().map(|l| l.index()).collect();
    assert_eq!(ids, vec![1, 9, 17, 25]);
    assert_eq!(stats.rounds, 2);
    assert_eq!(stats.messages, 64);
    assert_eq!(stats.total_bits, 768);
    assert_eq!(stats.max_message_bits, 12);
}

#[test]
fn golden_block_convergecast_and_flood_on_grid() {
    let g = generators::grid(5, 5);
    let t = RootedTree::bfs(&g, NodeId::new(0));
    let part = generators::partitions::grid_columns(5, 5);
    let s = ancestor_shortcut(&g, &t, &part);
    let family = BlockFamily::new(&g, &t, &part, &s);

    let values: Vec<Option<u64>> = g.nodes().map(|v| Some(v.index() as u64)).collect();
    let cast = block_convergecast(&g, &family, &values, AggregateOp::Sum, None).unwrap();
    let per_block_sum: u64 = cast.per_block.iter().flatten().sum();
    assert_eq!(per_block_sum, 300);
    assert_eq!(cast.stats.rounds, 8);
    assert_eq!(cast.stats.messages, 30);
    assert_eq!(cast.stats.total_bits, 2100);
    assert_eq!(cast.stats.max_message_bits, 70);

    let vals: Vec<Option<(u64, u64)>> = g
        .nodes()
        .map(|v| {
            part.part_of(v)
                .map(|_| (v.index() as u64, 100 + v.index() as u64))
        })
        .collect();
    let flood = part_flood_min(&g, &part, &family, &vals, 64, None).unwrap();
    assert_eq!(flood.supersteps, 1);
    assert_eq!(flood.stats.rounds, 16);
    assert_eq!(flood.stats.messages, 60);
    assert_eq!(flood.stats.total_bits, 4200);
    assert_eq!(flood.stats.max_message_bits, 70);
}

#[test]
fn golden_verification_on_grid() {
    let g = generators::grid(8, 8);
    let t = RootedTree::bfs(&g, NodeId::new(0));
    let part = generators::partitions::grid_columns(8, 8);
    let s = ancestor_shortcut(&g, &t, &part);
    let b = s.block_parameter(&g, &part).max(1);
    let active = vec![true; part.part_count()];
    let ver = verification_simulated(&g, &t, &part, &s, 3 * b, &active, None).unwrap();
    assert_eq!(ver.supersteps, 11);
    assert!(ver.outcome.good.iter().all(|&good| good));
    assert_eq!(ver.outcome.block_counts, vec![1; part.part_count()]);
    assert_eq!(ver.stats.rounds, 318);
    assert_eq!(ver.stats.messages, 2408);
    assert_eq!(ver.stats.total_bits, 64456);
    assert_eq!(ver.stats.max_message_bits, 27);
}
