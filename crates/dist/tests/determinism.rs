//! Engine-determinism properties for the superstep protocols: serial and
//! sharded engines must produce identical `SimStats` and identical computed
//! results for every shard count, across the four generator families. The
//! windowed engine is the heaviest `next_wake` user in the workspace —
//! every node sleeps through most of each `2L + 1` window — so these
//! properties pin the per-shard timer heaps of the sharded engine against
//! the serial reference.

use proptest::prelude::*;

use lcs_congest::SimConfig;
use lcs_core::existential::ancestor_shortcut;
use lcs_core::TreeShortcut;
use lcs_dist::{part_leaders, part_min_edges, verification_simulated, BlockFamily};
use lcs_graph::{generators, EdgeWeights, Graph, NodeId, Partition, RootedTree};

/// One of the generator families, with a `random_bfs_balls` partition.
fn family_instance(which: usize, size: usize, parts: usize, seed: u64) -> (Graph, Partition) {
    let graph = match which % 4 {
        0 => generators::grid(size, size),
        1 => generators::torus(size, size),
        2 => generators::caterpillar(4 * size, 2),
        _ => generators::random_connected(size * size, size * size, seed),
    };
    let parts = parts.clamp(1, graph.node_count());
    let partition = generators::partitions::random_bfs_balls(&graph, parts, seed ^ 0x9e37);
    (graph, partition)
}

fn pick_shortcut(
    graph: &Graph,
    tree: &RootedTree,
    partition: &Partition,
    seed: u64,
) -> TreeShortcut {
    if seed.is_multiple_of(2) {
        ancestor_shortcut(graph, tree, partition)
    } else {
        TreeShortcut::empty(graph, partition)
    }
}

/// A `SimConfig` pinned to a thread count (the generous generic round cap
/// is fine here — these properties compare engines, not budgets).
fn config(graph: &Graph, threads: usize) -> Option<SimConfig> {
    Some(SimConfig::for_graph(graph).with_threads(threads))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Leader election and min-edge flooding: identical stats and results
    /// for shard counts {1, 2, 3, 8}.
    #[test]
    fn part_flooding_is_engine_agnostic(
        which in 0usize..4,
        size in 4usize..8,
        parts in 2usize..9,
        seed in 0u64..300,
    ) {
        let (graph, partition) = family_instance(which, size, parts, seed);
        let tree = RootedTree::bfs(&graph, NodeId::new(0));
        let shortcut = pick_shortcut(&graph, &tree, &partition, seed);
        let family = BlockFamily::new(&graph, &tree, &partition, &shortcut);
        let weights = EdgeWeights::random_permutation(&graph, seed ^ 0xabcd);
        let candidates = lcs_dist::min_edge_candidates(&graph, &partition, &weights);

        let (leaders_ref, leader_stats_ref) =
            part_leaders(&graph, &partition, &family, config(&graph, 1)).unwrap();
        let (mins_ref, min_stats_ref) =
            part_min_edges(&graph, &partition, &family, &candidates, config(&graph, 1)).unwrap();

        for threads in [2usize, 3, 8] {
            let (leaders, leader_stats) =
                part_leaders(&graph, &partition, &family, config(&graph, threads)).unwrap();
            prop_assert_eq!(leader_stats, leader_stats_ref, "threads={}", threads);
            prop_assert_eq!(&leaders, &leaders_ref);

            let (mins, min_stats) =
                part_min_edges(&graph, &partition, &family, &candidates, config(&graph, threads))
                    .unwrap();
            prop_assert_eq!(min_stats, min_stats_ref, "threads={}", threads);
            prop_assert_eq!(&mins, &mins_ref);
        }
    }

    /// The Lemma 3 verification protocol (the longest superstep pipeline,
    /// `3T + 2` supersteps of timed wake-ups): identical stats, verdicts,
    /// and block counts for shard counts {1, 2, 3, 8}, including runs with
    /// inactive parts.
    #[test]
    fn verification_is_engine_agnostic(
        which in 0usize..4,
        size in 4usize..7,
        parts in 2usize..8,
        threshold in 1usize..5,
        seed in 0u64..300,
    ) {
        let (graph, partition) = family_instance(which, size, parts, seed);
        let tree = RootedTree::bfs(&graph, NodeId::new(0));
        let shortcut = pick_shortcut(&graph, &tree, &partition, seed);
        // Deactivate one part on some instances to cover the restricted
        // family path.
        let mut active = vec![true; partition.part_count()];
        if seed % 3 == 0 && partition.part_count() > 1 {
            active[seed as usize % partition.part_count()] = false;
        }

        let reference = verification_simulated(
            &graph, &tree, &partition, &shortcut, threshold, &active, config(&graph, 1),
        )
        .unwrap();
        for threads in [2usize, 3, 8] {
            let outcome = verification_simulated(
                &graph, &tree, &partition, &shortcut, threshold, &active,
                config(&graph, threads),
            )
            .unwrap();
            prop_assert_eq!(outcome.stats, reference.stats, "threads={}", threads);
            prop_assert_eq!(outcome.supersteps, reference.supersteps);
            prop_assert_eq!(&outcome.outcome.good, &reference.outcome.good);
            prop_assert_eq!(&outcome.outcome.block_counts, &reference.outcome.block_counts);
        }
    }

    /// Recording the verification run with a live [`lcs_obs::Obs`]: the
    /// counter half of the metrics snapshot (engine rounds/messages/bits,
    /// superstep and phase splits) is byte-identical for every shard count
    /// — counters are facts about the protocol, not about the schedule that
    /// executed it.
    #[test]
    fn verification_counters_are_engine_agnostic(
        which in 0usize..4,
        size in 4usize..7,
        parts in 2usize..8,
        threshold in 1usize..5,
        seed in 0u64..300,
    ) {
        let (graph, partition) = family_instance(which, size, parts, seed);
        let tree = RootedTree::bfs(&graph, NodeId::new(0));
        let shortcut = pick_shortcut(&graph, &tree, &partition, seed);
        let active = vec![true; partition.part_count()];

        let snapshot_at = |threads: usize| {
            let obs = lcs_obs::Obs::recording();
            lcs_dist::verification_simulated_obs(
                &graph, &tree, &partition, &shortcut, threshold, &active,
                config(&graph, threads), &obs,
            )
            .unwrap();
            obs.snapshot()
        };

        let reference = snapshot_at(1);
        let reference_text = reference.counters_text();
        prop_assert!(reference.counter("dist/verification/runs") == Some(1));
        for threads in [2usize, 3, 8] {
            let snap = snapshot_at(threads);
            prop_assert_eq!(snap.counters_text(), reference_text.clone(), "threads={}", threads);
            prop_assert_eq!(snap.counters_digest(), reference.counters_digest());
        }
    }
}
