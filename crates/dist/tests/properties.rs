//! Property-based tests: on randomized instances across the generator
//! families, every distributed protocol must agree with its centralized
//! counterpart and respect the paper's round bounds.

use proptest::prelude::*;

use lcs_congest::primitives::AggregateOp;
use lcs_core::existential::ancestor_shortcut;
use lcs_core::routing::PartRouter;
use lcs_core::TreeShortcut;
use lcs_dist::{part_leaders, part_min_edges, CrossCheck};
use lcs_graph::{generators, EdgeWeights, Graph, NodeId, Partition, RootedTree};

/// One of the generator families, with a `random_bfs_balls` partition.
fn family_instance(which: usize, size: usize, parts: usize, seed: u64) -> (Graph, Partition) {
    let graph = match which % 4 {
        0 => generators::grid(size, size),
        1 => generators::torus(size, size),
        2 => generators::caterpillar(4 * size, 2),
        _ => generators::random_connected(size * size, size * size, seed),
    };
    let parts = parts.clamp(1, graph.node_count());
    let partition = generators::partitions::random_bfs_balls(&graph, parts, seed ^ 0x9e37);
    (graph, partition)
}

/// An interesting shortcut for the instance: the ancestor witness on even
/// seeds (block parameter 1, larger congestion), the empty shortcut on odd
/// seeds (many singleton blocks, zero congestion).
fn pick_shortcut(
    graph: &Graph,
    tree: &RootedTree,
    partition: &Partition,
    seed: u64,
) -> TreeShortcut {
    if seed.is_multiple_of(2) {
        ancestor_shortcut(graph, tree, partition)
    } else {
        TreeShortcut::empty(graph, partition)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lemma 2: distributed convergecast equals the centralized per-block
    /// aggregates and takes exactly the scheduled number of rounds.
    #[test]
    fn distributed_convergecast_agrees(
        which in 0usize..4,
        size in 4usize..8,
        parts in 2usize..9,
        seed in 0u64..300,
    ) {
        let (graph, partition) = family_instance(which, size, parts, seed);
        let tree = RootedTree::bfs(&graph, NodeId::new(0));
        let shortcut = pick_shortcut(&graph, &tree, &partition, seed);
        let check = CrossCheck::new(&graph, &tree, &partition, &shortcut).unwrap();
        let values: Vec<Option<u64>> = graph
            .nodes()
            .map(|v| partition.part_of(v).map(|_| v.index() as u64 + 1))
            .collect();
        for op in [AggregateOp::Sum, AggregateOp::Min, AggregateOp::Max] {
            let run = check.convergecast(&values, op).unwrap();
            prop_assert_eq!(run.charged, run.executed);
            prop_assert!(run.executed <= run.bound);
        }
    }

    /// Theorem 2(i): distributed leader election elects the scheduled
    /// leaders within the operational `b(2L + 1)` bound.
    #[test]
    fn distributed_leader_election_agrees(
        which in 0usize..4,
        size in 4usize..8,
        parts in 2usize..9,
        seed in 0u64..300,
    ) {
        let (graph, partition) = family_instance(which, size, parts, seed);
        let tree = RootedTree::bfs(&graph, NodeId::new(0));
        let shortcut = pick_shortcut(&graph, &tree, &partition, seed);
        let check = CrossCheck::new(&graph, &tree, &partition, &shortcut).unwrap();
        let run = check.leader_election().unwrap();
        prop_assert!(run.executed <= run.bound);
    }

    /// Theorem 2(ii): the distributed Boruvka min-edge primitive equals the
    /// scheduled aggregation on random weights.
    #[test]
    fn distributed_min_edge_agrees(
        which in 0usize..4,
        size in 4usize..8,
        parts in 2usize..9,
        seed in 0u64..300,
    ) {
        let (graph, partition) = family_instance(which, size, parts, seed);
        let tree = RootedTree::bfs(&graph, NodeId::new(0));
        let shortcut = pick_shortcut(&graph, &tree, &partition, seed);
        let check = CrossCheck::new(&graph, &tree, &partition, &shortcut).unwrap();
        let weights = EdgeWeights::random_permutation(&graph, seed ^ 0x51);
        let candidates = check.boruvka_candidates(&weights);
        let run = check.min_edge(&candidates).unwrap();
        prop_assert!(run.executed <= run.bound);
    }

    /// Lemma 3: distributed block counting classifies every part exactly
    /// like the scheduled verification, across thresholds straddling the
    /// true block parameter.
    #[test]
    fn distributed_block_counts_agree(
        which in 0usize..4,
        size in 4usize..7,
        parts in 2usize..8,
        seed in 0u64..300,
    ) {
        let (graph, partition) = family_instance(which, size, parts, seed);
        let tree = RootedTree::bfs(&graph, NodeId::new(0));
        let shortcut = pick_shortcut(&graph, &tree, &partition, seed);
        let check = CrossCheck::new(&graph, &tree, &partition, &shortcut).unwrap();
        let b = check.family().block_parameter().max(1);
        for threshold in [1, b, b + 1] {
            let run = check.block_counts(threshold).unwrap();
            prop_assert!(run.executed <= run.bound);
        }
    }

    /// The flood protocols also work when the family is the whole partition
    /// with no shortcut at all (pure part-edge flooding), matching the
    /// centralized election and aggregation.
    #[test]
    fn no_shortcut_flooding_agrees(
        size in 4usize..8,
        parts in 2usize..9,
        seed in 0u64..200,
    ) {
        let graph = generators::grid(size, size);
        let partition =
            generators::partitions::random_bfs_balls(&graph, parts.min(graph.node_count()), seed);
        let tree = RootedTree::bfs(&graph, NodeId::new(0));
        let shortcut = TreeShortcut::empty(&graph, &partition);
        let family = lcs_dist::BlockFamily::new(&graph, &tree, &partition, &shortcut);
        let (leaders, _) = part_leaders(&graph, &partition, &family, None).unwrap();
        for p in partition.parts() {
            prop_assert_eq!(leaders[p.index()], *partition.members(p).iter().min().unwrap());
        }
        let weights = EdgeWeights::random_permutation(&graph, seed);
        let router = PartRouter::new(&graph, &tree, &partition, &shortcut);
        let candidates = lcs_dist::min_edge_candidates(&graph, &partition, &weights);
        let scheduled = router.aggregate_to_leaders(&candidates, |a, b| *a.min(b));
        let (per_part, _) =
            part_min_edges(&graph, &partition, &family, &candidates, None).unwrap();
        prop_assert_eq!(per_part, scheduled.values);
    }
}
