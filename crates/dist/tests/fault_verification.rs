//! Fault-tolerant verification: the Lemma 3 counting protocol must return
//! the fault-free classification under an active [`FaultPlan`] — healing
//! lost and delayed messages within an epoch via resends, and stalled
//! epochs via [`verification_with_retry`] — and the whole procedure must
//! stay deterministic across engines and shard counts.

use proptest::prelude::*;

use lcs_congest::{FaultPlan, SimConfig};
use lcs_core::existential::ancestor_shortcut;
use lcs_core::TreeShortcut;
use lcs_dist::{verification_simulated, verification_with_retry, RetryPolicy};
use lcs_graph::{generators, Graph, NodeId, Partition, RootedTree};
use lcs_obs::Obs;

fn grid_instance(n: usize) -> (Graph, RootedTree, Partition, TreeShortcut) {
    let graph = generators::grid(n, n);
    let tree = RootedTree::bfs(&graph, NodeId::new(0));
    let partition = generators::partitions::grid_columns(n, n);
    let shortcut = ancestor_shortcut(&graph, &tree, &partition);
    (graph, tree, partition, shortcut)
}

/// Satellite regression: the verification entry point owns its round
/// budget, so a caller config with a tiny `max_rounds` plus a latency plan
/// must still complete — the cap is raised to the latency-stretched
/// schedule, never tripped by fault inflation — and, with no loss or
/// crashes, the verdict is exactly the fault-free one in one epoch.
#[test]
fn latency_plan_raises_a_tiny_round_cap() {
    let (graph, tree, partition, shortcut) = grid_instance(6);
    let active = vec![true; partition.part_count()];
    let threshold = 2;
    let plain = verification_simulated(
        &graph, &tree, &partition, &shortcut, threshold, &active, None,
    )
    .unwrap();
    let cfg = SimConfig::for_graph(&graph)
        .with_max_rounds(1)
        .with_fault(FaultPlan::new(5).with_latency(2));
    let slow = verification_simulated(
        &graph,
        &tree,
        &partition,
        &shortcut,
        threshold,
        &active,
        Some(cfg),
    )
    .unwrap();
    assert!(slow.decisive, "latency alone must not stall verification");
    assert_eq!(slow.outcome.good, plain.outcome.good);
    assert_eq!(slow.outcome.block_counts, plain.outcome.block_counts);
    assert!(
        slow.stats.rounds > plain.stats.rounds,
        "the stretched schedule must inflate the executed rounds"
    );
}

/// Message loss and duplication are healed by the per-poll resends (and a
/// stalled epoch, if any, by the retry wrapper): the final classification
/// equals the fault-free one.
#[test]
fn lossy_verification_heals_to_the_fault_free_verdict() {
    let (graph, tree, partition, shortcut) = grid_instance(8);
    let active = vec![true; partition.part_count()];
    let threshold = 3;
    let plain = verification_simulated(
        &graph, &tree, &partition, &shortcut, threshold, &active, None,
    )
    .unwrap();
    let cfg = SimConfig::for_graph(&graph).with_fault(
        FaultPlan::new(11)
            .with_loss_ppm(20_000)
            .with_dup_ppm(10_000),
    );
    let obs = Obs::recording();
    let healed = verification_with_retry(
        &graph,
        &tree,
        &partition,
        &shortcut,
        threshold,
        &active,
        Some(cfg),
        RetryPolicy::default(),
        &obs,
    )
    .unwrap();
    assert!(
        healed.decisive,
        "loss below the resend redundancy must heal"
    );
    let outcome = healed.outcome.expect("decisive runs carry an outcome");
    assert_eq!(outcome.outcome.good, plain.outcome.good);
    assert_eq!(outcome.outcome.block_counts, plain.outcome.block_counts);
    let snap = obs.snapshot();
    assert_eq!(
        snap.counter("dist/verification/epochs"),
        Some(u64::from(healed.epochs))
    );
}

/// A mid-run crash with a restart heals: either within the epoch (the
/// restarted node re-floods) or by the next epoch, whose advanced round
/// offset places the whole run past the crash window.
#[test]
fn crash_with_restart_heals_across_epochs() {
    let (graph, tree, partition, shortcut) = grid_instance(6);
    let active = vec![true; partition.part_count()];
    let threshold = 2;
    let plain = verification_simulated(
        &graph, &tree, &partition, &shortcut, threshold, &active, None,
    )
    .unwrap();
    let cfg = SimConfig::for_graph(&graph).with_fault(
        FaultPlan::new(3)
            .with_loss_ppm(10_000)
            .with_crashes(1, 10, 20),
    );
    let healed = verification_with_retry(
        &graph,
        &tree,
        &partition,
        &shortcut,
        threshold,
        &active,
        Some(cfg),
        RetryPolicy::default(),
        &Obs::off(),
    )
    .unwrap();
    assert!(
        healed.decisive,
        "a restarting crash must heal within epochs"
    );
    let outcome = healed.outcome.expect("decisive runs carry an outcome");
    assert_eq!(outcome.outcome.good, plain.outcome.good);
    assert_eq!(outcome.outcome.block_counts, plain.outcome.block_counts);
}

/// A permanent crash (no restart) can never decide its part: every epoch
/// stalls and the wrapper reports indecision instead of a wrong verdict.
#[test]
fn a_permanent_crash_reports_indecision() {
    let (graph, tree, partition, shortcut) = grid_instance(5);
    let active = vec![true; partition.part_count()];
    let cfg = SimConfig::for_graph(&graph).with_fault(FaultPlan::new(7).with_crashes(1, 0, 0));
    let policy = RetryPolicy {
        max_epochs: 2,
        timeout_factor: 2,
        backoff: 1,
    };
    let degraded = verification_with_retry(
        &graph,
        &tree,
        &partition,
        &shortcut,
        2,
        &active,
        Some(cfg),
        policy,
        &Obs::off(),
    )
    .unwrap();
    assert!(!degraded.decisive);
    assert_eq!(degraded.epochs, 2);
    assert_eq!(degraded.stalls, 2);
    if let Some(outcome) = degraded.outcome {
        // Whatever partial outcome survived is still sound: no part
        // containing an undecided member may be reported good.
        assert!(!outcome.decisive);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Faulty verification is engine-agnostic: a seeded full plan produces
    /// identical stats, verdicts, counts, and decisiveness on the serial
    /// engine and on every shard count.
    #[test]
    fn faulty_verification_is_engine_agnostic(
        which in 0usize..4,
        size in 4usize..6,
        parts in 2usize..6,
        threshold in 2usize..4,
        seed in 0u64..100,
        latency in 0u32..2,
        loss_idx in 0usize..3,
    ) {
        let graph = match which % 4 {
            0 => generators::grid(size, size),
            1 => generators::torus(size, size),
            2 => generators::caterpillar(4 * size, 2),
            _ => generators::random_connected(size * size, size * size, seed),
        };
        let parts = parts.clamp(1, graph.node_count());
        let partition = generators::partitions::random_bfs_balls(&graph, parts, seed ^ 0x9e37);
        let tree = RootedTree::bfs(&graph, NodeId::new(0));
        let shortcut = ancestor_shortcut(&graph, &tree, &partition);
        let active = vec![true; partition.part_count()];
        let plan = FaultPlan::new(seed ^ 0xf00d)
            .with_latency(latency)
            .with_loss_ppm([0u32, 10_000, 60_000][loss_idx])
            .with_crashes(seed as u32 % 2, 5, 15);
        let run = |threads: usize| {
            let cfg = SimConfig::for_graph(&graph).with_threads(threads).with_fault(plan);
            verification_simulated(
                &graph, &tree, &partition, &shortcut, threshold, &active, Some(cfg),
            )
            .unwrap()
        };
        let reference = run(1);
        for threads in [2usize, 3, 8] {
            let outcome = run(threads);
            prop_assert_eq!(outcome.stats, reference.stats.clone(), "threads={}", threads);
            prop_assert_eq!(outcome.decisive, reference.decisive);
            prop_assert_eq!(&outcome.outcome.good, &reference.outcome.good);
            prop_assert_eq!(&outcome.outcome.block_counts, &reference.outcome.block_counts);
        }
        // The retry wrapper is deterministic end to end as well.
        let retry = |threads: usize| {
            let cfg = SimConfig::for_graph(&graph).with_threads(threads).with_fault(plan);
            verification_with_retry(
                &graph, &tree, &partition, &shortcut, threshold, &active,
                Some(cfg), RetryPolicy::default(), &Obs::off(),
            )
            .unwrap()
        };
        let r1 = retry(1);
        let r4 = retry(4);
        prop_assert_eq!(r1.epochs, r4.epochs);
        prop_assert_eq!(r1.stalls, r4.stalls);
        prop_assert_eq!(r1.decisive, r4.decisive);
        match (&r1.outcome, &r4.outcome) {
            (Some(a), Some(b)) => {
                prop_assert_eq!(&a.outcome.good, &b.outcome.good);
                prop_assert_eq!(a.stats.clone(), b.stats.clone());
            }
            (None, None) => {}
            _ => prop_assert!(false, "retry outcomes diverged between thread counts"),
        }
    }
}
