//! Cross-checks of distributed outputs against centralized references.

use lcs_graph::{EdgeId, EdgeWeights, Graph, UnionFind};

/// Returns `true` if `edges` forms a spanning tree of `graph`: exactly
/// `n - 1` edges, no cycles, and all nodes connected.
pub fn is_spanning_tree(graph: &Graph, edges: &[EdgeId]) -> bool {
    if graph.node_count() == 0 {
        return edges.is_empty();
    }
    if edges.len() != graph.node_count() - 1 {
        return false;
    }
    let mut uf = UnionFind::new(graph.node_count());
    for &e in edges {
        let edge = graph.edge(e);
        if !uf.union(edge.u.index(), edge.v.index()) {
            return false;
        }
    }
    uf.set_count() == 1
}

/// Returns `true` if `edges` is a minimum spanning tree of `graph` under
/// `weights`: it must be a spanning tree whose total weight equals the
/// weight of the centralized Kruskal reference.
pub fn is_minimum_spanning_tree(graph: &Graph, weights: &EdgeWeights, edges: &[EdgeId]) -> bool {
    if !is_spanning_tree(graph, edges) {
        return false;
    }
    weights.total(edges.iter().copied()) == lcs_graph::mst_weight(graph, weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::{generators, kruskal_mst, NodeId};

    #[test]
    fn kruskal_output_is_a_spanning_tree() {
        let g = generators::grid(5, 6);
        let w = EdgeWeights::random_permutation(&g, 4);
        let mst = kruskal_mst(&g, &w);
        assert!(is_spanning_tree(&g, &mst));
        assert!(is_minimum_spanning_tree(&g, &w, &mst));
    }

    #[test]
    fn wrong_edge_counts_and_cycles_are_rejected() {
        let g = generators::cycle(4);
        let w = EdgeWeights::uniform(&g);
        // All 4 edges: cycle, not a tree.
        let all: Vec<EdgeId> = g.edge_ids().collect();
        assert!(!is_spanning_tree(&g, &all));
        // 3 edges forming a path: a tree.
        assert!(is_spanning_tree(&g, &all[..3]));
        assert!(is_minimum_spanning_tree(&g, &w, &all[..3]));
        // Too few edges.
        assert!(!is_spanning_tree(&g, &all[..2]));
    }

    #[test]
    fn suboptimal_spanning_tree_is_not_minimum() {
        let g = generators::cycle(4);
        let w = EdgeWeights::from_vec(&g, vec![10, 1, 2, 3]).unwrap();
        // Spanning tree containing the weight-10 edge is not minimum.
        let edges = vec![EdgeId::new(0), EdgeId::new(1), EdgeId::new(2)];
        assert!(is_spanning_tree(&g, &edges));
        assert!(!is_minimum_spanning_tree(&g, &w, &edges));
    }

    #[test]
    fn empty_graph_conventions() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert!(is_spanning_tree(&g, &[]));
        let single = Graph::from_edges(1, &[]).unwrap();
        assert!(is_spanning_tree(&single, &[]));
        let _ = NodeId::new(0);
    }
}
