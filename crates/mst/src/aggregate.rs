//! Generic part-wise aggregation and broadcast.
//!
//! These are thin, documented wrappers over the Theorem 2 routing primitives
//! of `lcs-core`; they exist so that applications (and downstream users) can
//! run "every part computes a function of its members' values" without
//! touching the routing internals. Connectivity labeling, partwise counting
//! and the minimum-outgoing-edge step of Boruvka are all instances.

use lcs_core::routing::PartRouter;
use lcs_core::TreeShortcut;
use lcs_graph::{Graph, NodeId, Partition, RootedTree};

/// Result of a part-wise aggregation or broadcast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartAggregateOutcome<T> {
    /// The output values (per part for aggregation, per node for broadcast).
    pub values: Vec<T>,
    /// Leader node of every part (the smallest member id).
    pub leaders: Vec<NodeId>,
    /// Exact number of CONGEST rounds charged, including leader election.
    pub rounds: u64,
}

/// Aggregates one value per node into one value per part, combining with
/// `combine` (associative and commutative), using the given tree-restricted
/// shortcut for intra-part communication.
///
/// Nodes with `None` (including nodes outside every part) contribute
/// nothing; parts all of whose members are `None` yield `None`.
///
/// # Panics
///
/// Panics if `values.len()` differs from the graph's node count.
pub fn part_aggregate<T, F>(
    graph: &Graph,
    tree: &RootedTree,
    partition: &Partition,
    shortcut: &TreeShortcut,
    values: &[Option<T>],
    combine: F,
) -> PartAggregateOutcome<Option<T>>
where
    T: Clone,
    F: Fn(&T, &T) -> T,
{
    let router = PartRouter::new(graph, tree, partition, shortcut);
    let leaders = router.elect_leaders();
    let aggregated = router.aggregate_to_leaders(values, combine);
    PartAggregateOutcome {
        values: aggregated.values,
        leaders: leaders.values,
        rounds: leaders.rounds + aggregated.rounds,
    }
}

/// Broadcasts one value per part to all of that part's members, using the
/// given tree-restricted shortcut for intra-part communication. Returns one
/// `Option<T>` per node (`None` for nodes outside every part).
///
/// # Panics
///
/// Panics if `per_part.len()` differs from the partition's part count.
pub fn part_broadcast<T: Clone>(
    graph: &Graph,
    tree: &RootedTree,
    partition: &Partition,
    shortcut: &TreeShortcut,
    per_part: &[T],
) -> PartAggregateOutcome<Option<T>> {
    let router = PartRouter::new(graph, tree, partition, shortcut);
    let leaders = router.elect_leaders();
    let broadcast = router.broadcast_from_leaders(per_part);
    PartAggregateOutcome {
        values: broadcast.values,
        leaders: leaders.values,
        rounds: leaders.rounds + broadcast.rounds,
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)]
    use super::*;
    use lcs_core::construction::{FindShortcut, FindShortcutConfig};
    use lcs_graph::generators;

    fn setup() -> (Graph, RootedTree, Partition, TreeShortcut) {
        let g = generators::wheel(41);
        let t = RootedTree::bfs(&g, NodeId::new(0));
        let p = generators::partitions::wheel_arcs(41, 5);
        let s = FindShortcut::new(FindShortcutConfig::new(1, 1))
            .run(&g, &t, &p)
            .unwrap()
            .shortcut;
        (g, t, p, s)
    }

    #[test]
    fn partwise_sum_counts_members() {
        let (g, t, p, s) = setup();
        let ones: Vec<Option<u64>> = g.nodes().map(|v| p.part_of(v).map(|_| 1)).collect();
        let outcome = part_aggregate(&g, &t, &p, &s, &ones, |a, b| a + b);
        for part in p.parts() {
            assert_eq!(
                outcome.values[part.index()],
                Some(p.members(part).len() as u64)
            );
        }
        assert!(outcome.rounds > 0);
    }

    #[test]
    fn partwise_max_and_leaders() {
        let (g, t, p, s) = setup();
        let ids: Vec<Option<u64>> = g
            .nodes()
            .map(|v| p.part_of(v).map(|_| v.index() as u64))
            .collect();
        let outcome = part_aggregate(&g, &t, &p, &s, &ids, |a, b| *a.max(b));
        for part in p.parts() {
            let expected = p.members(part).iter().map(|v| v.index() as u64).max();
            assert_eq!(outcome.values[part.index()], expected);
            assert_eq!(
                outcome.leaders[part.index()],
                *p.members(part).iter().min().unwrap()
            );
        }
    }

    #[test]
    fn broadcast_reaches_only_part_members() {
        let (g, t, p, s) = setup();
        let per_part: Vec<u64> = (0..p.part_count() as u64).map(|i| 100 + i).collect();
        let outcome = part_broadcast(&g, &t, &p, &s, &per_part);
        for v in g.nodes() {
            match p.part_of(v) {
                Some(part) => {
                    assert_eq!(outcome.values[v.index()], Some(100 + part.index() as u64))
                }
                None => assert_eq!(outcome.values[v.index()], None),
            }
        }
    }

    #[test]
    fn nodes_without_values_are_skipped() {
        let (g, t, p, s) = setup();
        // Only the leader of each part carries a value.
        let leaders: Vec<NodeId> = p
            .parts()
            .map(|q| *p.members(q).iter().min().unwrap())
            .collect();
        let values: Vec<Option<u64>> = g
            .nodes()
            .map(|v| if leaders.contains(&v) { Some(7) } else { None })
            .collect();
        let outcome = part_aggregate(&g, &t, &p, &s, &values, |a, b| a + b);
        for part in p.parts() {
            assert_eq!(outcome.values[part.index()], Some(7));
        }
    }
}
