//! Distributed optimization applications built on low-congestion shortcuts.
//!
//! The paper's motivation for shortcuts is that distributed optimization
//! algorithms repeatedly need every part of a partition to compute a simple
//! function of its own data — and that doing so over `G[P_i]` alone costs
//! the *part* diameter, which can vastly exceed the *network* diameter `D`.
//! This crate contains the applications that exercise the framework:
//!
//! * [`boruvka_mst`] — Boruvka's minimum-spanning-tree algorithm (Lemma 4 of
//!   the paper): `O(log n)` phases, each phase computing every part's
//!   minimum-weight outgoing edge through the shortcut routing primitives
//!   and merging parts in randomized star shapes,
//! * [`ShortcutStrategy`] — how each phase obtains its shortcut: the paper's
//!   `FindShortcut`, the Appendix A doubling search, the *no-shortcut*
//!   baseline (communication restricted to `G[P_i]`, the slow algorithm the
//!   introduction argues against), or the *whole-tree* baseline (every part
//!   uses all of `T`, demonstrating why congestion must be controlled),
//! * [`part_aggregate`] / [`part_broadcast`] — the generic part-wise
//!   aggregation primitives other applications (connectivity, partwise
//!   statistics) are built from,
//! * [`verify`] — cross-checks of the distributed outputs against the
//!   centralized references from `lcs-graph`.
//!
//! # Example
//!
//! ```
//! use lcs_mst::{boruvka_mst, BoruvkaConfig, ShortcutStrategy};
//! use lcs_graph::{generators, kruskal_mst, EdgeWeights};
//!
//! let graph = generators::grid(6, 6);
//! let weights = EdgeWeights::random_permutation(&graph, 7);
//! let outcome = boruvka_mst(
//!     &graph,
//!     &weights,
//!     &BoruvkaConfig::new(ShortcutStrategy::Doubling),
//! )
//! .unwrap();
//! let reference = kruskal_mst(&graph, &weights);
//! assert_eq!(outcome.edges, reference);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregate;
// The boruvka module hosts (and its tests exercise) the deprecated legacy
// configuration struct; the façade replacement is `lcs_api::Session::mst`.
#[allow(deprecated)]
mod boruvka;
pub mod verify;

pub use aggregate::{part_aggregate, part_broadcast, PartAggregateOutcome};
#[allow(deprecated)]
pub use boruvka::{boruvka_mst, BoruvkaConfig, MstOutcome, ShortcutStrategy};
pub use lcs_core::routing::ExecutionMode;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, lcs_core::CoreError>;
