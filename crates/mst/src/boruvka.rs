//! Distributed Boruvka MST on low-congestion shortcuts (Lemma 4).
//!
//! The algorithm runs in phases. Each phase starts with a partition of the
//! nodes into connected parts (initially singletons), all of which already
//! agree on their part id. The phase then:
//!
//! 1. constructs a tree-restricted shortcut for the current partition
//!    according to the chosen [`ShortcutStrategy`],
//! 2. lets every part compute its minimum-weight outgoing edge via the
//!    Theorem 2 convergecast (the cut property guarantees every such edge is
//!    an MST edge),
//! 3. merges parts along those edges in randomized star shapes: every part
//!    flips a fair coin to become a *head* or a *tail*, and a tail merges
//!    into the head at the other end of its minimum outgoing edge. Star
//!    merges keep the new parts shallow so part ids can be re-agreed in a
//!    constant number of shortcut broadcasts; every minimum edge is used
//!    with probability at least 1/4, so the number of parts drops by a
//!    constant factor in expectation and `O(log n)` phases suffice.
//!
//! Merge edges are exactly the edges reported in the output; when the
//! partition collapses to a single part they form the (unique, for distinct
//! weights) minimum spanning tree.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use lcs_congest::RoundCost;
use lcs_core::construction::{doubling_search, DoublingConfig, FindShortcut, FindShortcutConfig};
use lcs_core::routing::{ExecutionMode, PartRouter};
use lcs_core::TreeShortcut;
use lcs_dist::{part_leaders, part_min_edges, BlockFamily};
use lcs_graph::{
    EdgeId, EdgeWeights, Graph, NodeId, PartId, Partition, PartitionBuilder, RootedTree, UnionFind,
};

use crate::Result;

/// How each Boruvka phase obtains the shortcut it routes over.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShortcutStrategy {
    /// The paper's Theorem 3 construction with known canonical parameters
    /// `(congestion, block)`.
    FindShortcut {
        /// Canonical congestion passed to the construction.
        congestion: usize,
        /// Canonical block parameter passed to the construction.
        block: usize,
    },
    /// The Appendix A doubling search (no parameters needed). This is the
    /// configuration a user who knows nothing about the topology would run.
    Doubling,
    /// Baseline: no shortcut at all. Every part communicates inside
    /// `G[P_i]` only, so a phase costs the maximum *part* diameter — the
    /// slow behaviour the paper's introduction motivates against.
    NoShortcut,
    /// Baseline: every part may use the entire spanning tree
    /// (`H_i = E(T)`). Block parameter 1 but congestion `N`, demonstrating
    /// why congestion must be bounded.
    WholeTree,
}

/// Configuration of [`boruvka_mst`].
///
/// # Migration
///
/// This is a legacy configuration kept for downstream code; new code
/// should go through the façade: build a session with
/// `lcs_api::Pipeline::on` (re-exported as
/// `low_congestion_shortcuts::api`) and call `Session::mst(weights,
/// strategy)` — the seed, execution mode and simulator configuration are
/// session properties there instead of per-call struct fields.
#[deprecated(
    since = "0.1.0",
    note = "migrate to `api::Pipeline` / `api::Session::mst(weights, strategy)`"
)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoruvkaConfig {
    /// Shortcut strategy used by every phase.
    pub strategy: ShortcutStrategy,
    /// Random seed (head/tail coin flips and the randomized constructions).
    pub seed: u64,
    /// Hard cap on the number of phases (the expected number is `O(log n)`;
    /// the cap only exists so that misuse fails loudly).
    pub max_phases: usize,
    /// How each phase's per-part communication executes:
    /// [`ExecutionMode::Scheduled`] charges the exact Theorem 2 schedules
    /// (the seed behaviour); [`ExecutionMode::Simulated`] runs leader
    /// election and min-edge aggregation as real message passing in the
    /// CONGEST simulator (`lcs_dist`) and charges the executed rounds.
    /// The [`ShortcutStrategy::NoShortcut`] baseline always uses its
    /// part-internal schedule.
    pub execution: ExecutionMode,
    /// Simulator configuration of the [`ExecutionMode::Simulated`] phases
    /// (bandwidth, tracing, engine thread count). `None` uses the
    /// per-protocol defaults (`SimConfig::for_graph`, threads from
    /// `LCS_THREADS`); the `lcs_api` session passes its own so the thread
    /// count flows as a value.
    pub sim: Option<lcs_congest::SimConfig>,
}

impl BoruvkaConfig {
    /// Creates a configuration with the given strategy, seed 0, a generous
    /// phase cap and scheduled execution.
    pub fn new(strategy: ShortcutStrategy) -> Self {
        BoruvkaConfig {
            strategy,
            seed: 0,
            max_phases: 400,
            execution: ExecutionMode::Scheduled,
            sim: None,
        }
    }

    /// Overrides the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the execution mode.
    pub fn with_execution(mut self, execution: ExecutionMode) -> Self {
        self.execution = execution;
        self
    }

    /// Overrides the simulator configuration of `Simulated` phases.
    pub fn with_sim_config(mut self, sim: lcs_congest::SimConfig) -> Self {
        self.sim = Some(sim);
        self
    }
}

/// Result of the distributed MST computation.
#[derive(Debug, Clone)]
pub struct MstOutcome {
    /// The MST edges, sorted by edge id.
    pub edges: Vec<EdgeId>,
    /// Total weight of the returned edges.
    pub weight: u64,
    /// Number of Boruvka phases executed.
    pub phases: usize,
    /// Exact round cost, broken down per phase and per step.
    pub cost: RoundCost,
}

impl MstOutcome {
    /// Total number of CONGEST rounds.
    pub fn total_rounds(&self) -> u64 {
        self.cost.total()
    }
}

/// Runs distributed Boruvka MST over `graph` with the given edge weights.
///
/// # Errors
///
/// Propagates shortcut-construction errors and reports
/// [`lcs_core::CoreError::IterationBudgetExhausted`] if the phase cap is hit
/// before the partition collapses to a single part.
///
/// # Panics
///
/// Panics if the graph is empty or not connected.
pub fn boruvka_mst(
    graph: &Graph,
    weights: &EdgeWeights,
    config: &BoruvkaConfig,
) -> Result<MstOutcome> {
    assert!(graph.node_count() > 0, "the graph must be nonempty");
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut cost = RoundCost::new();

    // Fix the BFS tree once; O(D) rounds.
    let root = NodeId::new(0);
    let tree = RootedTree::bfs(graph, root);
    cost.charge("bfs-tree", u64::from(tree.depth_of_tree()));

    let mut partition = Partition::singletons(graph);
    let mut chosen: Vec<EdgeId> = Vec::new();
    let mut phases = 0;

    while partition.part_count() > 1 {
        if phases >= config.max_phases {
            return Err(lcs_core::CoreError::IterationBudgetExhausted {
                iterations: phases,
                remaining_bad: partition.part_count(),
            });
        }
        phases += 1;
        let label = |step: &str| format!("phase-{phases}/{step}");

        // 1. Shortcut construction for the current partition.
        let shortcut = build_shortcut(
            graph,
            &tree,
            &partition,
            config.strategy,
            config.seed.wrapping_add(phases as u64),
            &mut cost,
            &label("shortcut"),
        )?;

        // 2. Minimum-weight outgoing edge per part. Every node first learns
        //    its neighbors' part ids (one round), computes its local
        //    candidate, and the candidates are convergecast to the leaders.
        cost.charge(label("exchange-part-ids"), 1);
        let candidates: Vec<Option<(u64, EdgeId)>> = graph
            .nodes()
            .map(|v| {
                let my_part = partition.part_of(v)?;
                graph
                    .neighbors(v)
                    .filter(|&(u, _)| partition.part_of(u) != Some(my_part))
                    .map(|(_, e)| (weights.weight(e), e))
                    .min()
            })
            .collect();

        let (min_outgoing, routing_rounds) = match (config.strategy, config.execution) {
            (ShortcutStrategy::NoShortcut, _) => {
                // Baseline: convergecast + broadcast inside G[P_i] costs the
                // part diameter (twice), all parts in parallel.
                let per_part = aggregate_directly(&partition, &candidates);
                let diameter = u64::from(partition.max_part_diameter(graph));
                (per_part, 4 * diameter + 2)
            }
            (_, ExecutionMode::Scheduled) => {
                let router = PartRouter::new(graph, &tree, &partition, &shortcut);
                let leaders = router.elect_leaders();
                let aggregated = router.aggregate_to_leaders(&candidates, |a, b| *a.min(b));
                let broadcast_back = router.exchange_rounds();
                (
                    aggregated.values,
                    leaders.rounds + aggregated.rounds + broadcast_back,
                )
            }
            (_, ExecutionMode::Simulated) => {
                // Real message passing: the flood both aggregates the
                // candidates and disseminates the result to every member,
                // so no separate broadcast-back is charged. Leader election
                // runs as its own protocol, mirroring the scheduled cost
                // structure.
                let family = BlockFamily::new(graph, &tree, &partition, &shortcut);
                let (_, leader_stats) = part_leaders(graph, &partition, &family, config.sim)?;
                let (per_part, min_stats) =
                    part_min_edges(graph, &partition, &family, &candidates, config.sim)?;
                (per_part, leader_stats.rounds + min_stats.rounds)
            }
        };
        cost.charge(label("min-outgoing-edge"), routing_rounds);

        // 3. Star merges: heads and tails.
        let heads: Vec<bool> = (0..partition.part_count())
            .map(|_| rng.gen_bool(0.5))
            .collect();
        let mut uf = UnionFind::new(partition.part_count());
        let mut merge_edges = Vec::new();
        for p in partition.parts() {
            if heads[p.index()] {
                continue;
            }
            let Some((_, edge)) = min_outgoing[p.index()] else {
                continue;
            };
            let e = graph.edge(edge);
            // The endpoint outside p tells us which part we merge into.
            let other_part = [e.u, e.v]
                .into_iter()
                .filter_map(|v| partition.part_of(v))
                .find(|&q| q != p);
            let Some(target) = other_part else { continue };
            if heads[target.index()] && uf.union(p.index(), target.index()) {
                merge_edges.push(edge);
            }
        }
        // Re-agreeing on part ids after a star merge: one broadcast over the
        // merged parts' shortcuts plus a constant number of rounds over the
        // merge edges themselves.
        cost.charge(label("merge"), routing_rounds / 2 + 2);
        // Termination check: a whole-tree convergecast.
        cost.charge(label("termination-check"), u64::from(tree.depth_of_tree()));

        if !merge_edges.is_empty() {
            chosen.extend(merge_edges.iter().copied());
            partition = merge_partition(graph, &partition, &mut uf);
        }
    }

    chosen.sort();
    chosen.dedup();
    let weight = weights.total(chosen.iter().copied());
    Ok(MstOutcome {
        edges: chosen,
        weight,
        phases,
        cost,
    })
}

/// Builds the per-phase shortcut according to the strategy.
fn build_shortcut(
    graph: &Graph,
    tree: &RootedTree,
    partition: &Partition,
    strategy: ShortcutStrategy,
    seed: u64,
    cost: &mut RoundCost,
    label: &str,
) -> Result<TreeShortcut> {
    match strategy {
        ShortcutStrategy::FindShortcut { congestion, block } => {
            let result =
                FindShortcut::new(FindShortcutConfig::new(congestion, block).with_seed(seed))
                    .run(graph, tree, partition)?;
            cost.charge(label.to_string(), result.total_rounds());
            Ok(result.shortcut)
        }
        ShortcutStrategy::Doubling => {
            let result = doubling_search(
                graph,
                tree,
                partition,
                DoublingConfig::new().with_seed(seed),
            )?;
            cost.charge(label.to_string(), result.total_rounds());
            Ok(result.shortcut)
        }
        ShortcutStrategy::NoShortcut => {
            cost.charge(label.to_string(), 0);
            Ok(TreeShortcut::empty(graph, partition))
        }
        ShortcutStrategy::WholeTree => {
            // Every part gets the entire tree; announcing "use everything"
            // costs a single broadcast over T.
            let mut shortcut = TreeShortcut::empty(graph, partition);
            for p in partition.parts() {
                for e in tree.tree_edges() {
                    shortcut
                        .assign(tree, p, e)
                        .expect("tree edges and valid parts");
                }
            }
            cost.charge(label.to_string(), u64::from(tree.depth_of_tree()));
            Ok(shortcut)
        }
    }
}

/// Reference aggregation used by the no-shortcut baseline: combine the
/// candidates of each part directly (the rounds are charged separately by
/// the caller, based on the part diameters).
fn aggregate_directly(
    partition: &Partition,
    candidates: &[Option<(u64, EdgeId)>],
) -> Vec<Option<(u64, EdgeId)>> {
    let mut per_part: Vec<Option<(u64, EdgeId)>> = vec![None; partition.part_count()];
    for p in partition.parts() {
        for &v in partition.members(p) {
            if let Some(candidate) = candidates[v.index()] {
                per_part[p.index()] = Some(match per_part[p.index()] {
                    None => candidate,
                    Some(best) => best.min(candidate),
                });
            }
        }
    }
    per_part
}

/// Contracts the partition along the merges recorded in `uf`.
fn merge_partition(graph: &Graph, partition: &Partition, uf: &mut UnionFind) -> Partition {
    // Map union-find representatives to dense new part ids.
    let mut new_id_of_rep: Vec<Option<usize>> = vec![None; partition.part_count()];
    let mut next = 0usize;
    let mut new_of_old: Vec<usize> = Vec::with_capacity(partition.part_count());
    for p in partition.parts() {
        let rep = uf.find(p.index());
        let id = *new_id_of_rep[rep].get_or_insert_with(|| {
            let id = next;
            next += 1;
            id
        });
        new_of_old.push(id);
    }
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); next];
    for p in partition.parts() {
        for &v in partition.members(p) {
            members[new_of_old[p.index()]].push(v);
        }
    }
    let mut builder = PartitionBuilder::new(graph.node_count());
    for group in members {
        builder
            .add_part(group)
            .expect("merged parts are disjoint and nonempty");
    }
    builder.build()
}

#[allow(dead_code)]
fn _part_id_helper(p: PartId) -> usize {
    p.index()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_spanning_tree;
    use lcs_graph::{generators, kruskal_mst};

    fn check_matches_kruskal(graph: &Graph, weights: &EdgeWeights, strategy: ShortcutStrategy) {
        let outcome = boruvka_mst(graph, weights, &BoruvkaConfig::new(strategy).with_seed(3))
            .expect("construction succeeds");
        let reference = kruskal_mst(graph, weights);
        assert_eq!(outcome.edges, reference, "strategy {strategy:?}");
        assert_eq!(outcome.weight, weights.total(reference));
        assert!(is_spanning_tree(graph, &outcome.edges));
        assert!(outcome.phases >= 1);
        assert!(outcome.total_rounds() > 0);
    }

    #[test]
    fn mst_on_grid_matches_kruskal_for_every_strategy() {
        let g = generators::grid(5, 5);
        let w = EdgeWeights::random_permutation(&g, 11);
        check_matches_kruskal(&g, &w, ShortcutStrategy::Doubling);
        check_matches_kruskal(&g, &w, ShortcutStrategy::NoShortcut);
        check_matches_kruskal(&g, &w, ShortcutStrategy::WholeTree);
        check_matches_kruskal(
            &g,
            &w,
            ShortcutStrategy::FindShortcut {
                congestion: 8,
                block: 2,
            },
        );
    }

    #[test]
    fn mst_on_wheel_and_torus() {
        let g = generators::wheel(33);
        let w = EdgeWeights::random_permutation(&g, 5);
        check_matches_kruskal(&g, &w, ShortcutStrategy::Doubling);

        let g = generators::torus(5, 6);
        let w = EdgeWeights::random_permutation(&g, 6);
        check_matches_kruskal(&g, &w, ShortcutStrategy::Doubling);
    }

    #[test]
    fn mst_on_random_graphs_across_seeds() {
        for seed in 0..4 {
            let g = generators::random_connected(40, 40, seed);
            let w = EdgeWeights::random_permutation(&g, seed + 100);
            check_matches_kruskal(&g, &w, ShortcutStrategy::Doubling);
        }
    }

    #[test]
    fn simulated_execution_matches_kruskal_and_scheduled_results() {
        let g = generators::grid(5, 5);
        let w = EdgeWeights::random_permutation(&g, 11);
        let base = BoruvkaConfig::new(ShortcutStrategy::FindShortcut {
            congestion: 8,
            block: 2,
        })
        .with_seed(3);
        let scheduled = boruvka_mst(&g, &w, &base).unwrap();
        let simulated =
            boruvka_mst(&g, &w, &base.with_execution(ExecutionMode::Simulated)).unwrap();
        // Same seeds, same merges: the edge sets agree with each other and
        // with Kruskal, only the charged routing rounds differ.
        assert_eq!(simulated.edges, scheduled.edges);
        assert_eq!(simulated.edges, kruskal_mst(&g, &w));
        assert!(is_spanning_tree(&g, &simulated.edges));
        assert!(simulated.total_rounds() > 0);

        let doubling = BoruvkaConfig::new(ShortcutStrategy::Doubling)
            .with_seed(5)
            .with_execution(ExecutionMode::Simulated);
        let outcome = boruvka_mst(&g, &w, &doubling).unwrap();
        assert_eq!(outcome.edges, kruskal_mst(&g, &w));
    }

    #[test]
    fn phase_count_is_logarithmic() {
        let g = generators::grid(8, 8);
        let w = EdgeWeights::random_permutation(&g, 2);
        let outcome = boruvka_mst(&g, &w, &BoruvkaConfig::new(ShortcutStrategy::Doubling)).unwrap();
        // 64 nodes; with star merges the expected reduction is ~1/4 per
        // phase, so a generous logarithmic cap:
        assert!(outcome.phases <= 40, "took {} phases", outcome.phases);
    }

    #[test]
    fn shortcut_strategies_beat_the_no_shortcut_baseline_on_the_wheel() {
        // Wheel: network diameter 2, arcs get long as parts merge, so the
        // no-shortcut baseline pays the arc diameter every phase while the
        // shortcut-based algorithm keeps phases cheap.
        let g = generators::wheel(129);
        let w = EdgeWeights::random_permutation(&g, 9);
        let with_shortcuts = boruvka_mst(
            &g,
            &w,
            &BoruvkaConfig::new(ShortcutStrategy::FindShortcut {
                congestion: 2,
                block: 2,
            })
            .with_seed(1),
        )
        .unwrap();
        let without = boruvka_mst(
            &g,
            &w,
            &BoruvkaConfig::new(ShortcutStrategy::NoShortcut).with_seed(1),
        )
        .unwrap();
        assert_eq!(with_shortcuts.edges, without.edges);
        // Compare only the routing cost (shortcut construction excluded):
        // the baseline's part-internal routing must be strictly more
        // expensive than the shortcut routing.
        let routing_with: u64 = with_shortcuts
            .cost
            .entries()
            .iter()
            .filter(|(l, _)| l.contains("min-outgoing-edge"))
            .map(|(_, r)| r)
            .sum();
        let routing_without: u64 = without
            .cost
            .entries()
            .iter()
            .filter(|(l, _)| l.contains("min-outgoing-edge"))
            .map(|(_, r)| r)
            .sum();
        assert!(
            routing_with < routing_without,
            "shortcut routing {routing_with} should beat baseline {routing_without}"
        );
    }

    #[test]
    fn single_node_graph_needs_no_phases() {
        let g = Graph::from_edges(1, &[]).unwrap();
        let w = EdgeWeights::uniform(&g);
        let outcome = boruvka_mst(&g, &w, &BoruvkaConfig::new(ShortcutStrategy::Doubling)).unwrap();
        assert!(outcome.edges.is_empty());
        assert_eq!(outcome.phases, 0);
    }

    #[test]
    fn cost_breakdown_covers_every_phase() {
        let g = generators::grid(4, 4);
        let w = EdgeWeights::random_permutation(&g, 1);
        let outcome = boruvka_mst(&g, &w, &BoruvkaConfig::new(ShortcutStrategy::Doubling)).unwrap();
        for phase in 1..=outcome.phases {
            assert!(
                outcome.cost.total_for_prefix(&format!("phase-{phase}/")) > 0,
                "phase {phase} missing from the cost breakdown"
            );
        }
    }
}
