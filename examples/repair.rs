//! Incremental repair: update a tracked decomposition through
//! `Session::update_partition` instead of rebuilding it from scratch.
//!
//! A 64x64 grid is partitioned into its 64 columns and tracked once; three
//! partition deltas of growing size (1, 8, and 32 columns touched) are then
//! applied both ways — incrementally against the tracked baseline, and by
//! tracking the post-delta partition in a fresh session. The repaired and
//! rebuilt decompositions are digest-equal by construction (part-scoped
//! seeds are anchored at each part's minimum member), while the repair only
//! pays for the dirty parts.
//!
//! Run with: `cargo run --release --example repair`

use std::time::Instant;

use low_congestion_shortcuts::api::{Pipeline, RepairRun, Session, Strategy, ValueDigest};
use low_congestion_shortcuts::graph::{generators, Graph, NodeId, PartId, Partition};

/// FNV-1a fold over everything a repair returns: the shortcut's per-part
/// edge sets, the quality record, and the per-part verdicts.
fn digest_of(run: &RepairRun) -> u64 {
    let mut digest = ValueDigest::new();
    for p in 0..run.shortcut.part_count() {
        let edges = run.shortcut.edges_of(PartId::new(p));
        digest.push(edges.len() as u64);
        for &e in edges {
            digest.push(e.index() as u64);
        }
    }
    digest.push(run.quality.congestion as u64);
    digest.push(run.quality.dilation as u64);
    digest.push(run.quality.block_parameter as u64);
    for &good in &run.good {
        digest.push(u64::from(good));
    }
    digest.value()
}

fn fresh_session(graph: &Graph) -> Session<'_> {
    Pipeline::on(graph)
        .seed(7)
        .build()
        .expect("the grid is nonempty and connected")
}

fn main() {
    let side = 64usize;
    let graph = generators::grid(side, side);
    let partition = generators::partitions::grid_columns(side, side);
    println!(
        "graph: {side}x{side} grid (n = {}), partition: {} columns",
        graph.node_count(),
        partition.part_count()
    );

    // Track the partition once; the session caches every part's
    // customization state (shortcut edges, congestion contribution,
    // quality numbers) for later repairs.
    let mut session = fresh_session(&graph);
    let start = Instant::now();
    session
        .track_partition(&partition, Strategy::doubling())
        .expect("the grid admits good tree-restricted shortcuts");
    println!(
        "tracked the full partition in {:.1} ms\n",
        start.elapsed().as_secs_f64() * 1e3
    );

    // Three deltas of growing size: move the row-0 node of columns
    // 1..=k into column 0 (the moved run stays connected to column 0,
    // and every source column keeps its remaining path intact).
    for k in [1usize, 8, 32] {
        let moved: Vec<NodeId> = (1..=k).map(NodeId::new).collect();
        let delta =
            low_congestion_shortcuts::api::PartitionDelta::new().move_nodes(moved, PartId::new(0));
        let repaired_partition: Partition = partition.apply(&delta).expect("the delta is valid");

        // Incremental: repair the tracked baseline through the delta.
        let baseline = session.repair_baseline().expect("tracked above");
        let start = Instant::now();
        let repaired = session
            .repair_from(&baseline, &delta)
            .expect("a valid delta repairs cleanly");
        let repair_ms = start.elapsed().as_secs_f64() * 1e3;

        // From scratch: a fresh session tracks the post-delta partition.
        let mut rebuild_session = fresh_session(&graph);
        let start = Instant::now();
        let rebuilt = rebuild_session
            .track_partition(&repaired_partition, Strategy::doubling())
            .expect("the repaired partition is valid");
        let rebuild_ms = start.elapsed().as_secs_f64() * 1e3;

        let repaired_digest = digest_of(&repaired);
        let rebuilt_digest = digest_of(&rebuilt);
        assert_eq!(
            repaired_digest, rebuilt_digest,
            "repair and rebuild must agree byte-for-byte"
        );
        println!(
            "delta: {k:2} node(s) moved | dirty {:2}/{} parts | \
             repair {repair_ms:8.1} ms vs rebuild {rebuild_ms:8.1} ms ({:4.1}x) | \
             digest {repaired_digest:016x} (equal)",
            repaired.repaired_parts,
            repaired_partition.part_count(),
            rebuild_ms / repair_ms.max(1e-9),
        );
    }
}
