//! Verification under injected faults: a deterministic fault plan on a
//! 32×32 grid — 1% message loss plus one node that crashes mid-run and
//! restarts with cleared state — served through the self-healing verify
//! query.
//!
//! The plan is a pure function of its seed: every loss draw, every delay,
//! and the crash schedule are keyed by (plan, edge, round), so reruns and
//! every `LCS_THREADS` value produce byte-identical results. The session
//! detects stalled epochs (members that never decide) and retries with a
//! fresh round budget; the example prints the retry shape, the fault
//! event counters the recording [`Obs`] collected, and the final verdict,
//! which matches the fault-free classification exactly.
//!
//! Run with: `cargo run --release --example faulty_verify`

use low_congestion_shortcuts::api::{ExecutionMode, FaultPlan, Pipeline, Strategy};
use low_congestion_shortcuts::graph::generators;
use low_congestion_shortcuts::obs::Obs;

fn main() {
    let side = 32usize;
    let graph = generators::grid(side, side);
    let partition = generators::partitions::grid_columns(side, side);

    // Build the shortcut once, fault-free (construction interprets a
    // failed verification as "guess too small", so faults are injected
    // into the verify query only).
    let clean = Pipeline::on(&graph)
        .seed(42)
        .execution(ExecutionMode::Simulated)
        .build()
        .expect("the grid is connected");
    let run = clean
        .shortcut(
            &partition,
            Strategy::Fixed {
                congestion: side - 1,
                block: 1,
            },
        )
        .expect("grid columns admit shortcuts");
    let want = clean
        .verify(&run.shortcut, &partition, 3)
        .expect("fault-free verification runs");

    // 1% loss on every edge, and one node crashing at round 10 with a
    // restart 40 rounds later (state cleared, protocol re-entered).
    let plan = FaultPlan::new(7)
        .with_loss_ppm(10_000)
        .with_crashes(1, 10, 40);
    let obs = Obs::recording();
    let session = Pipeline::on(&graph)
        .seed(42)
        .execution(ExecutionMode::Simulated)
        .fault(plan)
        .recorder(obs.clone())
        .build()
        .expect("the grid is connected");
    let healed = session
        .verify(&run.shortcut, &partition, 3)
        .expect("a restarting crash under light loss heals");

    let metric = |key: &str| {
        healed
            .report
            .metrics
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    println!(
        "grid {side}x{side}, 1% loss + 1 crash/restart: verified in {} epochs ({} stalled)",
        metric("retry_epochs"),
        metric("retry_stalls"),
    );

    let snapshot = obs.snapshot();
    println!("\n-- fault event counters (deterministic: functions of the plan) --");
    for name in [
        "fault/drops",
        "fault/dups",
        "fault/delays",
        "fault/crash_drops",
        "fault/restarts",
    ] {
        println!("{name:<20} {}", snapshot.counter(name).unwrap_or(0));
    }

    let good = healed.good.iter().filter(|&&g| g).count();
    println!(
        "\nfinal verdict: {good}/{} parts good (fault-free says {}/{}) — {}",
        partition.part_count(),
        want.good.iter().filter(|&&g| g).count(),
        partition.part_count(),
        if healed.good == want.good && healed.block_counts == want.block_counts {
            "identical to the fault-free classification"
        } else {
            "MISMATCH"
        }
    );
    assert_eq!(healed.good, want.good, "the healed verdict must be correct");
    assert_eq!(healed.block_counts, want.block_counts);
}
