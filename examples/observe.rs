//! Observing a session: attach a recording [`Obs`] handle to a pipeline,
//! serve a few queries, and read the metrics back out.
//!
//! Builds a 64×64 grid session with `Pipeline::recorder`, constructs a
//! shortcut and verifies it under the simulated CONGEST engine, then
//! prints the three views the obs layer exports: the span tree (where the
//! wall-clock went, nested by instrumentation path), the deterministic
//! counter block (byte-identical across reruns and thread counts — the
//! half a regression harness can diff), and the Prometheus text format a
//! scraper would ingest.
//!
//! The recorder is opt-in per session: every probe in the engine, session
//! and workload layers is a single branch on an `Option` when the handle
//! is off, so unobserved runs pay nothing.
//!
//! Run with: `cargo run --release --example observe`

use low_congestion_shortcuts::api::{ExecutionMode, Pipeline, Strategy};
use low_congestion_shortcuts::graph::generators;
use low_congestion_shortcuts::obs::Obs;

fn main() {
    let side = 64usize;
    let graph = generators::grid(side, side);
    let partition = generators::partitions::grid_columns(side, side);

    // A fresh registry; cloning the handle is a refcount bump, so the same
    // recorder observes every layer the session touches.
    let obs = Obs::recording();
    let session = Pipeline::on(&graph)
        .seed(42)
        .execution(ExecutionMode::Simulated)
        .recorder(obs.clone())
        .build()
        .expect("the grid is connected");

    let run = session
        .shortcut(
            &partition,
            Strategy::Fixed {
                congestion: side - 1,
                block: 1,
            },
        )
        .expect("grid columns admit shortcuts");
    let verdicts = session
        .verify(&run.shortcut, &partition, 3)
        .expect("verification respects the CONGEST constraints");
    let good = verdicts.good.iter().filter(|&&g| g).count();
    println!(
        "grid {side}x{side}: constructed shortcut in {} rounds, {good}/{} parts verified good\n",
        run.total_rounds(),
        partition.part_count()
    );

    let snapshot = obs.snapshot();

    println!("-- span tree (wall-clock by probe path) --");
    println!("{}", snapshot.span_tree());

    println!("-- deterministic counters (byte-identical across reruns and LCS_THREADS) --");
    print!("{}", snapshot.counters_text());
    println!("counters digest: {:016x}\n", snapshot.counters_digest());

    println!("-- prometheus text format --");
    print!("{}", snapshot.to_prometheus());
}
