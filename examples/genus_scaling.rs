//! Corollary 1 in practice: shortcut quality as the genus grows.
//!
//! The paper proves that genus-`g` graphs admit tree-restricted shortcuts of
//! congestion `O(gD log D)` and block parameter `O(log D)`, and that the
//! construction finds shortcuts at most an `O(log N)` factor worse. This
//! example sweeps the number of handles added to a planar grid and reports
//! the measured quality and construction cost of the parameter-free doubling
//! construction, one `api` session per instance.
//!
//! Run with: `cargo run --release --example genus_scaling`

use low_congestion_shortcuts::api::{Pipeline, Strategy};
use low_congestion_shortcuts::graph::{diameter_exact, generators};

fn main() {
    let (rows, cols) = (16usize, 16usize);
    println!(
        "{:>6} {:>6} {:>8} {:>12} {:>8} {:>10} {:>12}",
        "genus", "D", "depth(T)", "congestion", "block", "dilation", "rounds"
    );
    for g in [0usize, 1, 2, 4, 8] {
        let graph = generators::genus_handles(rows, cols, g);
        let partition = generators::partitions::grid_columns(rows, cols);
        let session = Pipeline::on(&graph)
            .build()
            .expect("handle graphs are connected");
        let run = session
            .shortcut(&partition, Strategy::doubling())
            .expect("handle graphs admit good shortcuts");
        let quality = session
            .quality(&run.shortcut, &partition)
            .expect("the partition matches the session graph");
        println!(
            "{:>6} {:>6} {:>8} {:>12} {:>8} {:>10} {:>12}",
            g,
            diameter_exact(&graph),
            session.tree().depth_of_tree(),
            quality.congestion,
            quality.block_parameter,
            quality.dilation,
            run.total_rounds()
        );
    }
}
