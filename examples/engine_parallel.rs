//! Serial vs sharded round engine: same protocol, same results, different
//! wall-clock.
//!
//! Runs the Lemma 3 distributed verification protocol (the workspace's
//! longest superstep pipeline) on a 64×64 grid twice — once through a
//! session pinned to the serial reference engine, once through a session
//! with four worker shards — and asserts that the executed statistics and
//! every per-part verdict are byte-identical. The shard count is a
//! throughput knob, never a semantic one; `Pipeline::threads` (a value —
//! `Threads::Auto` defers to `LCS_THREADS`) selects it per session.
//!
//! Run with: `cargo run --release --example engine_parallel`

use std::time::Instant;

use low_congestion_shortcuts::api::{ExecutionMode, Pipeline, Strategy, Threads};
use low_congestion_shortcuts::graph::generators;

fn main() {
    let (side, (c, b)) = (64usize, (63usize, 1usize));
    let graph = generators::grid(side, side);
    let partition = generators::partitions::grid_columns(side, side);

    let mut serial = Pipeline::on(&graph)
        .threads(Threads::Fixed(1))
        .execution(ExecutionMode::Simulated)
        .seed(42)
        .build()
        .expect("the grid is connected");
    let sharded = Pipeline::on(&graph)
        .threads(Threads::Fixed(4))
        .execution(ExecutionMode::Simulated)
        .seed(42)
        .build()
        .expect("the grid is connected");

    // The engine selection is visible on the session before running.
    println!(
        "grid {side}x{side}: serial engine = {} shard(s), sharded engine = {} shard(s)",
        serial.shard_map().shard_count(),
        sharded.shard_map().shard_count()
    );

    // Construct once (scheduled construction, identical on both sessions).
    serial.set_execution(ExecutionMode::Scheduled);
    let shortcut = serial
        .shortcut(
            &partition,
            Strategy::Fixed {
                congestion: c,
                block: b,
            },
        )
        .expect("grid columns admit shortcuts")
        .shortcut;
    serial.set_execution(ExecutionMode::Simulated);

    let start = Instant::now();
    let serial_run = serial
        .verify(&shortcut, &partition, 3 * b)
        .expect("verification respects the CONGEST constraints");
    let serial_ms = start.elapsed().as_secs_f64() * 1e3;

    let start = Instant::now();
    let sharded_run = sharded
        .verify(&shortcut, &partition, 3 * b)
        .expect("verification respects the CONGEST constraints");
    let sharded_ms = start.elapsed().as_secs_f64() * 1e3;

    // Determinism is the engine's contract: identical statistics and
    // identical results, not merely "close".
    let stats = serial_run.report.sim.expect("simulated runs record stats");
    assert_eq!(serial_run.report.sim, sharded_run.report.sim);
    assert_eq!(serial_run.good, sharded_run.good);
    assert_eq!(serial_run.block_counts, sharded_run.block_counts);

    println!(
        "verification: {} rounds, {} messages, {} bits (identical on both engines)",
        stats.rounds, stats.messages, stats.total_bits
    );
    println!("serial engine:  {serial_ms:.1} ms");
    println!("sharded engine: {sharded_ms:.1} ms (4 worker threads)");
    println!(
        "good parts: {}/{}",
        serial_run.good.iter().filter(|&&g| g).count(),
        partition.part_count()
    );
}
