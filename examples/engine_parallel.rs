//! Serial vs sharded round engine: same protocol, same results, different
//! wall-clock.
//!
//! Runs the Lemma 3 distributed verification protocol (the workspace's
//! longest superstep pipeline) on a 64×64 grid twice — once on the serial
//! reference engine, once on the sharded engine with four worker shards —
//! and asserts that the executed statistics and every per-part verdict are
//! byte-identical. The shard count is a throughput knob, never a semantic
//! one; `LCS_THREADS` (or `SimConfig::with_threads`) selects it for a
//! whole process.
//!
//! Run with: `cargo run --release --example engine_parallel`

use std::time::Instant;

use low_congestion_shortcuts::congest::{SimConfig, Simulator};
use low_congestion_shortcuts::core::construction::{FindShortcut, FindShortcutConfig};
use low_congestion_shortcuts::dist::verification_simulated;
use low_congestion_shortcuts::graph::{generators, NodeId, RootedTree};

fn main() {
    let (side, parts_cb) = (64usize, (63usize, 1usize));
    let graph = generators::grid(side, side);
    let partition = generators::partitions::grid_columns(side, side);
    let tree = RootedTree::bfs(&graph, NodeId::new(0));
    let (c, b) = parts_cb;

    let shortcut = FindShortcut::new(FindShortcutConfig::new(c, b).with_seed(42))
        .run(&graph, &tree, &partition)
        .expect("grid columns admit shortcuts")
        .shortcut;
    let active = vec![true; partition.part_count()];

    // The engine selection is visible on the simulator before running.
    let serial_sim = Simulator::new(&graph, SimConfig::for_graph(&graph).with_threads(1));
    let sharded_sim = Simulator::new(&graph, SimConfig::for_graph(&graph).with_threads(4));
    println!(
        "grid {side}x{side}: serial engine = {} shard(s), sharded engine = {} shard(s)",
        serial_sim.shard_count(),
        sharded_sim.shard_count()
    );

    let start = Instant::now();
    let serial = verification_simulated(
        &graph,
        &tree,
        &partition,
        &shortcut,
        3 * b,
        &active,
        Some(serial_sim.config()),
    )
    .expect("verification respects the CONGEST constraints");
    let serial_ms = start.elapsed().as_secs_f64() * 1e3;

    let start = Instant::now();
    let sharded = verification_simulated(
        &graph,
        &tree,
        &partition,
        &shortcut,
        3 * b,
        &active,
        Some(sharded_sim.config()),
    )
    .expect("verification respects the CONGEST constraints");
    let sharded_ms = start.elapsed().as_secs_f64() * 1e3;

    // Determinism is the engine's contract: identical statistics and
    // identical results, not merely "close".
    assert_eq!(serial.stats, sharded.stats);
    assert_eq!(serial.outcome.good, sharded.outcome.good);
    assert_eq!(serial.outcome.block_counts, sharded.outcome.block_counts);

    println!(
        "verification: {} rounds, {} messages, {} bits (identical on both engines)",
        serial.stats.rounds, serial.stats.messages, serial.stats.total_bits
    );
    println!("serial engine:  {serial_ms:.1} ms");
    println!("sharded engine: {sharded_ms:.1} ms (4 worker threads)");
    println!(
        "good parts: {}/{}",
        serial.outcome.good.iter().filter(|&&g| g).count(),
        partition.part_count()
    );
}
