//! CoreSlow versus CoreFast: rounds and output quality (Lemmas 5 and 7).
//!
//! Both core subroutines compute a tentative shortcut with bounded
//! congestion in which at least half the parts are already good; the
//! difference is the price: `O(D·c)` rounds for the deterministic version
//! versus `O(D log n + c)` for the sampled one. This example measures both
//! on grids partitioned into random BFS balls, for growing congestion
//! parameters.
//!
//! Run with: `cargo run --release --example shortcut_quality`

use low_congestion_shortcuts::core::construction::{core_fast, core_slow, CoreFastConfig};
use low_congestion_shortcuts::graph::{generators, NodeId, RootedTree};

fn main() {
    let (rows, cols) = (20usize, 20usize);
    let graph = generators::grid(rows, cols);
    let tree = RootedTree::bfs(&graph, NodeId::new(0));
    println!("grid {rows}x{cols}, depth(T) = {}", tree.depth_of_tree());
    println!(
        "{:>6} {:>6} {:>12} {:>12} {:>14} {:>14}",
        "parts", "c", "slow rounds", "fast rounds", "slow good/N", "fast good/N"
    );
    for &parts in &[8usize, 20, 50, 100] {
        let partition = generators::partitions::random_bfs_balls(&graph, parts, 1);
        let active = vec![true; partition.part_count()];
        let c = parts.max(4) / 2;
        let b = 4usize;

        let slow = core_slow(&graph, &tree, &partition, c, &active);
        let fast = core_fast(
            &graph,
            &tree,
            &partition,
            &CoreFastConfig::new(c).with_seed(1),
            &active,
        );

        let good = |counts: &[usize]| counts.iter().filter(|&&k| k <= 3 * b).count();
        let slow_counts = slow.shortcut.block_counts(&graph, &partition);
        let fast_counts = fast.shortcut.block_counts(&graph, &partition);

        println!(
            "{:>6} {:>6} {:>12} {:>12} {:>11}/{:<3} {:>11}/{:<3}",
            parts,
            c,
            slow.rounds,
            fast.rounds,
            good(&slow_counts),
            parts,
            good(&fast_counts),
            parts
        );
    }
}
