//! CoreSlow versus CoreFast: rounds and output quality (Lemmas 5 and 7).
//!
//! Both core subroutines compute a tentative shortcut with bounded
//! congestion in which at least half the parts are already good; the
//! difference is the price: `O(D·c)` rounds for the deterministic version
//! versus `O(D log n + c)` for the sampled one. This example measures both
//! on grids partitioned into random BFS balls, for growing congestion
//! parameters, all queries served by one `api` session.
//!
//! Run with: `cargo run --release --example shortcut_quality`

use low_congestion_shortcuts::api::{CoreKind, Pipeline};
use low_congestion_shortcuts::graph::generators;

fn main() {
    let (rows, cols) = (20usize, 20usize);
    let graph = generators::grid(rows, cols);
    let session = Pipeline::on(&graph)
        .seed(1)
        .build()
        .expect("the grid is connected");
    println!(
        "grid {rows}x{cols}, depth(T) = {}",
        session.tree().depth_of_tree()
    );
    println!(
        "{:>6} {:>6} {:>12} {:>12} {:>14} {:>14}",
        "parts", "c", "slow rounds", "fast rounds", "slow good/N", "fast good/N"
    );
    for &parts in &[8usize, 20, 50, 100] {
        let partition = generators::partitions::random_bfs_balls(&graph, parts, 1);
        let c = parts.max(4) / 2;
        let b = 4usize;

        let slow = session
            .core(&partition, CoreKind::Slow, c)
            .expect("the partition matches the session graph");
        let fast = session
            .core(&partition, CoreKind::Fast, c)
            .expect("the partition matches the session graph");

        let good = |counts: &[usize]| counts.iter().filter(|&&k| k <= 3 * b).count();
        let slow_counts = slow.shortcut.block_counts(&graph, &partition);
        let fast_counts = fast.shortcut.block_counts(&graph, &partition);

        println!(
            "{:>6} {:>6} {:>12} {:>12} {:>11}/{:<3} {:>11}/{:<3}",
            parts,
            c,
            slow.rounds,
            fast.rounds,
            good(&slow_counts),
            parts,
            good(&fast_counts),
            parts
        );
    }
}
