//! Serving over TCP: spawn the line-JSON server in-process, replay a
//! deterministic workload trace against it over loopback, and check that
//! the wire changed nothing but latency.
//!
//! The server builds a grid corpus, warms one shared session, and four
//! worker threads answer four closed-loop client connections through
//! `Session::serve_shared` (`&self` — no session lock). The client
//! replay reports per-kind round-trip latencies; the example then
//! replays the same trace directly through `Session::serve` and asserts
//! the digest sequences are identical — the server's determinism
//! contract in one assert.
//!
//! Run with: `cargo run --release --example serve_tcp`

use low_congestion_shortcuts::api::Pipeline;
use low_congestion_shortcuts::server::{client, ServerConfig, ServerHandle};
use low_congestion_shortcuts::workload::{
    generate_trace, query_of, Corpus, CorpusSpec, Family, Mode, QueryKind, QueryMix, WorkloadSpec,
};

fn main() {
    const CLIENTS: usize = 4;
    const QUERIES: usize = 48;
    const SEED: u64 = 31;

    let corpus_spec = CorpusSpec {
        family: Family::Grid,
        size: 8,
        entries: 4,
        seed: SEED,
    };

    // The server thread owns its own corpus + warm session; workers must
    // cover the concurrent connection count (connection-per-worker).
    let server = ServerHandle::spawn(
        ServerConfig::new(vec![corpus_spec])
            .workers(CLIENTS)
            .seed(SEED),
    )
    .expect("server spawns");
    println!("serving on {}", server.addr());

    let spec = WorkloadSpec::new(
        Mode::Closed {
            clients: CLIENTS,
            think_nanos: 0,
        },
        QUERIES,
        1.0,
        QueryMix::mixed(),
        SEED,
    );
    let corpus = Corpus::build(&corpus_spec).expect("corpus builds");
    let trace = generate_trace(&spec, corpus.len()).expect("trace generates");

    let outcome =
        client::replay_closed(server.addr(), "grid", &trace, CLIENTS, 0).expect("replay runs");
    println!(
        "{} queries over {} connections: {:.0} req/s, p50 {:.1} us, p99 {:.1} us, p99.9 {:.1} us",
        outcome.queries,
        CLIENTS,
        outcome.throughput_qps(),
        outcome.histogram.quantile(0.50) as f64 / 1e3,
        outcome.histogram.quantile(0.99) as f64 / 1e3,
        outcome.histogram.p999() as f64 / 1e3,
    );
    for kind in QueryKind::ALL {
        let h = &outcome.kind_histograms[kind.index()];
        if h.is_empty() {
            continue;
        }
        println!(
            "  {:<9} {:>3} served  p50 {:>8.1} us  p99 {:>8.1} us",
            kind.label(),
            h.count(),
            h.quantile(0.50) as f64 / 1e3,
            h.quantile(0.99) as f64 / 1e3,
        );
    }

    // The determinism contract: the wire adds latency, never values.
    let mut session = Pipeline::on(corpus.graph())
        .seed(SEED)
        .build()
        .expect("session builds");
    let direct: Vec<u64> = trace
        .iter()
        .map(|event| {
            session
                .serve(query_of(&corpus, event))
                .expect("direct serve succeeds")
                .digest
        })
        .collect();
    assert_eq!(
        outcome.digests, direct,
        "server digests must equal a direct Session::serve replay"
    );
    println!(
        "digest check: {} server responses == direct serve replay",
        direct.len()
    );

    client::shutdown(server.addr()).expect("shutdown acknowledged");
    let stats = server.join().expect("server drains");
    println!(
        "drained: {} connections, {} requests",
        stats.connections, stats.requests
    );
}
