//! Distributed MST on planar networks: shortcuts versus the baselines.
//!
//! The wheel graph is the paper's motivation in miniature: the network
//! diameter is 2, but as Boruvka merges parts the parts become long arcs of
//! the rim, so the no-shortcut algorithm pays the arc length every phase
//! while the shortcut-based algorithm keeps every phase polylogarithmic.
//!
//! Run with: `cargo run --release --example mst_planar`

use low_congestion_shortcuts::api::{Pipeline, ShortcutStrategy};
use low_congestion_shortcuts::graph::{generators, kruskal_mst, EdgeWeights, Graph};

fn run(name: &str, graph: &Graph, seed: u64) {
    let weights = EdgeWeights::random_permutation(graph, seed);
    let reference = kruskal_mst(graph, &weights);
    let session = Pipeline::on(graph)
        .seed(seed)
        .build()
        .expect("MST instances are connected");

    println!(
        "== {name}: n = {}, m = {} ==",
        graph.node_count(),
        graph.edge_count()
    );
    println!(
        "{:<28} {:>8} {:>10} {:>12}",
        "strategy", "phases", "rounds", "correct"
    );
    for (label, strategy) in [
        ("doubling shortcuts", ShortcutStrategy::Doubling),
        ("no shortcuts (baseline)", ShortcutStrategy::NoShortcut),
        ("whole-tree shortcut", ShortcutStrategy::WholeTree),
    ] {
        let outcome = session
            .mst(&weights, strategy)
            .expect("MST computation succeeds");
        println!(
            "{:<28} {:>8} {:>10} {:>12}",
            label,
            outcome.phases,
            outcome.report.rounds_charged,
            outcome.edges == reference
        );
    }
    println!();
}

fn main() {
    run("wheel W_257 (planar, D = 2)", &generators::wheel(257), 11);
    run("grid 16x16 (planar)", &generators::grid(16, 16), 12);
    run("torus 12x12 (genus 1)", &generators::torus(12, 12), 13);
}
