//! Quickstart: construct a tree-restricted shortcut on a planar grid and
//! inspect it.
//!
//! This example reproduces the situation of Figure 1 of the paper: a part of
//! a partitioned graph, its shortcut subgraph restricted to a BFS tree, and
//! the decomposition of that subgraph into block components.
//!
//! Run with: `cargo run --example quickstart`

use low_congestion_shortcuts::core::construction::{doubling_search, DoublingConfig};
use low_congestion_shortcuts::graph::{generators, NodeId, PartId, RootedTree};

fn main() {
    // A 16x16 planar grid partitioned into its 16 columns.
    let (rows, cols) = (16usize, 16usize);
    let graph = generators::grid(rows, cols);
    let partition = generators::partitions::grid_columns(rows, cols);
    let tree = RootedTree::bfs(&graph, NodeId::new(0));

    println!(
        "graph: {rows}x{cols} grid, n = {}, m = {}",
        graph.node_count(),
        graph.edge_count()
    );
    println!(
        "partition: {} parts (columns), max part diameter {}",
        partition.part_count(),
        partition.max_part_diameter(&graph)
    );
    println!("BFS tree depth D = {}", tree.depth_of_tree());
    println!();

    // Construct a shortcut without knowing the canonical parameters
    // (Appendix A doubling search over the Theorem 3 construction).
    let result = doubling_search(&graph, &tree, &partition, DoublingConfig::new())
        .expect("the grid admits good tree-restricted shortcuts");
    let quality = result.shortcut.quality(&graph, &partition);

    println!(
        "doubling search succeeded at guesses (c = {}, b = {})",
        result.congestion_guess, result.block_guess
    );
    println!(
        "construction cost: {} CONGEST rounds over {} attempt(s)",
        result.total_rounds(),
        result.attempts.len()
    );
    println!(
        "measured quality: congestion = {}, block parameter = {}, dilation = {}",
        quality.congestion, quality.block_parameter, quality.dilation
    );
    println!(
        "Lemma 1 check (dilation <= b(2D+1)): {}",
        quality.satisfies_lemma1(tree.depth_of_tree())
    );
    println!();

    // Figure 1: the block decomposition of one part's shortcut subgraph.
    let part = PartId::new(cols / 2);
    let blocks = result
        .shortcut
        .block_components(&graph, &tree, &partition, part);
    println!(
        "part {part} (column {}) uses {} tree edges, decomposed into {} block component(s):",
        cols / 2,
        result.shortcut.edges_of(part).len(),
        blocks.len()
    );
    for (i, block) in blocks.iter().enumerate() {
        println!(
            "  block {i}: root {} at depth {}, {} nodes ({} of them part members)",
            block.root,
            block.root_depth,
            block.nodes.len(),
            block
                .nodes
                .iter()
                .filter(|v| partition.part_of(**v) == Some(part))
                .count()
        );
    }
}
