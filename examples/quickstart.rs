//! Quickstart: construct a tree-restricted shortcut on a planar grid and
//! inspect it — through the `api` front door.
//!
//! This example reproduces the situation of Figure 1 of the paper: a part of
//! a partitioned graph, its shortcut subgraph restricted to a BFS tree, and
//! the decomposition of that subgraph into block components.
//!
//! Run with: `cargo run --example quickstart`

use low_congestion_shortcuts::api::{Pipeline, Strategy};
use low_congestion_shortcuts::graph::{generators, PartId};

fn main() {
    // A 16x16 planar grid partitioned into its 16 columns.
    let (rows, cols) = (16usize, 16usize);
    let graph = generators::grid(rows, cols);
    let partition = generators::partitions::grid_columns(rows, cols);

    // One session owns the BFS tree, the shard map and the quality
    // workspaces; every query below reuses them.
    let session = Pipeline::on(&graph)
        .build()
        .expect("the grid is nonempty and connected");

    println!(
        "graph: {rows}x{cols} grid, n = {}, m = {}",
        graph.node_count(),
        graph.edge_count()
    );
    println!(
        "partition: {} parts (columns), max part diameter {}",
        partition.part_count(),
        partition.max_part_diameter(&graph)
    );
    println!("BFS tree depth D = {}", session.tree().depth_of_tree());
    println!();

    // Construct a shortcut without knowing the canonical parameters
    // (Appendix A doubling search over the Theorem 3 construction).
    let run = session
        .shortcut(&partition, Strategy::doubling())
        .expect("the grid admits good tree-restricted shortcuts");
    let quality = session
        .quality(&run.shortcut, &partition)
        .expect("the partition matches the session graph");

    let (c, b) = run.winning_guess().expect("the search succeeded");
    println!("doubling search succeeded at guesses (c = {c}, b = {b})");
    println!(
        "construction cost: {} CONGEST rounds over {} attempt(s)",
        run.total_rounds(),
        run.report.attempts.len()
    );
    println!(
        "measured quality: congestion = {}, block parameter = {}, dilation = {}",
        quality.congestion, quality.block_parameter, quality.dilation
    );
    println!(
        "Lemma 1 check (dilation <= b(2D+1)): {}",
        quality.satisfies_lemma1(session.tree().depth_of_tree())
    );
    println!();

    // The unified report serializes without any external dependency.
    println!("report: {}", run.report.to_json());
    println!();

    // Figure 1: the block decomposition of one part's shortcut subgraph.
    let part = PartId::new(cols / 2);
    let blocks = run
        .shortcut
        .block_components(&graph, session.tree(), &partition, part);
    println!(
        "part {part} (column {}) uses {} tree edges, decomposed into {} block component(s):",
        cols / 2,
        run.shortcut.edges_of(part).len(),
        blocks.len()
    );
    for (i, block) in blocks.iter().enumerate() {
        println!(
            "  block {i}: root {} at depth {}, {} nodes ({} of them part members)",
            block.root,
            block.root_depth,
            block.nodes.len(),
            block
                .nodes
                .iter()
                .filter(|v| partition.part_of(**v) == Some(part))
                .count()
        );
    }
}
