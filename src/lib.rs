//! Umbrella crate for the *Low-Congestion Shortcuts without Embedding*
//! reproduction (Haeupler, Izumi, Zuzic — PODC 2016).
//!
//! This crate simply re-exports the workspace members under one roof so the
//! examples and integration tests can depend on a single package:
//!
//! * [`graph`] — graph substrate: structures, generators, spanning trees,
//!   partitions, centralized reference algorithms,
//! * [`congest`] — the synchronous CONGEST-model simulator,
//! * [`core`] — tree-restricted shortcuts: definitions, routing,
//!   construction (`CoreSlow`, `CoreFast`, `FindShortcut`, doubling),
//! * [`dist`] — the distributed protocol layer: Lemma 2 / Theorem 2 /
//!   Lemma 3 executed as real message passing in the simulator, with the
//!   cross-check harness pitting them against the scheduled versions,
//! * [`mst`] — applications: distributed Boruvka MST, part-wise aggregation,
//!   and the baselines used by the experiments,
//! * [`api`] — the `Pipeline`/`Session` front door with unified config,
//!   errors, and reports,
//! * [`workload`] — the serving harness: Zipf traffic over pre-built
//!   corpora, open/closed-loop client drivers, tail-latency histograms,
//! * [`obs`] — the zero-overhead-when-off instrumentation layer: metric
//!   registry, spans, Prometheus/JSON export, and the shared JSON writer.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the reproduced quantitative claims.
//!
//! # Quick start
//!
//! ```
//! use low_congestion_shortcuts::core::construction::{doubling_search, DoublingConfig};
//! use low_congestion_shortcuts::graph::{generators, NodeId, RootedTree};
//!
//! let graph = generators::wheel(33);
//! let tree = RootedTree::bfs(&graph, NodeId::new(0));
//! let partition = generators::partitions::wheel_arcs(33, 4);
//! let result = doubling_search(&graph, &tree, &partition, DoublingConfig::new()).unwrap();
//! assert_eq!(result.shortcut.quality(&graph, &partition).block_parameter, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lcs_api as api;
pub use lcs_congest as congest;
pub use lcs_core as core;
pub use lcs_dist as dist;
pub use lcs_graph as graph;
pub use lcs_mst as mst;
pub use lcs_obs as obs;
pub use lcs_server as server;
pub use lcs_workload as workload;
