//! Cross-crate integration tests: the full pipeline from graph generation
//! through shortcut construction and routing to the MST application,
//! validated against centralized references.
//!
//! The legacy entry points are exercised on purpose (beyond the façade
//! tests below): they are the deprecation shims the redesign promised to
//! keep compiling for downstream code.
#![allow(deprecated)]

use low_congestion_shortcuts::api;
use low_congestion_shortcuts::core::construction::{
    doubling_search, DoublingConfig, FindShortcut, FindShortcutConfig,
};
use low_congestion_shortcuts::core::existential::reference_parameters;
use low_congestion_shortcuts::core::routing::PartRouter;
use low_congestion_shortcuts::graph::{
    diameter_exact, generators, kruskal_mst, EdgeWeights, NodeId, RootedTree,
};
use low_congestion_shortcuts::mst::{
    boruvka_mst, part_aggregate, verify, BoruvkaConfig, ShortcutStrategy,
};

/// End-to-end pipeline on a planar grid: generate, construct shortcuts with
/// the doubling search, route, and solve MST — everything must agree with
/// the centralized references.
#[test]
fn full_pipeline_on_planar_grid() {
    let graph = generators::grid(10, 10);
    let partition = generators::partitions::grid_columns(10, 10);
    let tree = RootedTree::bfs(&graph, NodeId::new(0));

    // Shortcut construction without knowing (c, b).
    let constructed = doubling_search(&graph, &tree, &partition, DoublingConfig::new()).unwrap();
    let quality = constructed.shortcut.quality(&graph, &partition);
    assert!(quality.block_parameter <= 3 * constructed.block_guess);
    assert!(quality.satisfies_lemma1(tree.depth_of_tree()));

    // Routing on the constructed shortcut: per-part member counts.
    let router = PartRouter::new(&graph, &tree, &partition, &constructed.shortcut);
    assert!(router.supergraphs_connected());
    let ones: Vec<Option<u64>> = graph
        .nodes()
        .map(|v| partition.part_of(v).map(|_| 1))
        .collect();
    let sums = router.aggregate_to_leaders(&ones, |a, b| a + b);
    for p in partition.parts() {
        assert_eq!(
            sums.values[p.index()],
            Some(partition.members(p).len() as u64)
        );
    }

    // Distributed MST matches Kruskal.
    let weights = EdgeWeights::random_permutation(&graph, 99);
    let outcome = boruvka_mst(
        &graph,
        &weights,
        &BoruvkaConfig::new(ShortcutStrategy::Doubling),
    )
    .unwrap();
    assert_eq!(outcome.edges, kruskal_mst(&graph, &weights));
    assert!(verify::is_minimum_spanning_tree(
        &graph,
        &weights,
        &outcome.edges
    ));
}

/// The headline separation: on a wheel (network diameter 2, long rim arcs)
/// the shortcut-based MST routing beats the part-internal baseline, and both
/// compute the same (correct) tree.
#[test]
fn shortcut_mst_beats_baseline_routing_on_low_diameter_planar_graphs() {
    let graph = generators::wheel(257);
    assert_eq!(diameter_exact(&graph), 2);
    let weights = EdgeWeights::random_permutation(&graph, 5);

    let with_shortcuts = boruvka_mst(
        &graph,
        &weights,
        &BoruvkaConfig::new(ShortcutStrategy::FindShortcut {
            congestion: 2,
            block: 2,
        }),
    )
    .unwrap();
    let baseline = boruvka_mst(
        &graph,
        &weights,
        &BoruvkaConfig::new(ShortcutStrategy::NoShortcut),
    )
    .unwrap();

    assert_eq!(with_shortcuts.edges, baseline.edges);
    assert_eq!(with_shortcuts.edges, kruskal_mst(&graph, &weights));

    let routing = |outcome: &low_congestion_shortcuts::mst::MstOutcome| -> u64 {
        outcome
            .cost
            .entries()
            .iter()
            .filter(|(label, _)| label.contains("min-outgoing-edge"))
            .map(|(_, rounds)| rounds)
            .sum()
    };
    assert!(
        routing(&with_shortcuts) < routing(&baseline),
        "shortcut routing ({}) must beat the baseline ({})",
        routing(&with_shortcuts),
        routing(&baseline)
    );
}

/// Theorem 3 guarantee, cross-checked through the public API only, on a
/// genus-1 (toroidal) instance.
#[test]
fn theorem3_on_torus_with_reference_parameters() {
    let graph = generators::torus(10, 10);
    let tree = RootedTree::bfs(&graph, NodeId::new(0));
    let partition = generators::partitions::random_bfs_balls(&graph, 10, 1);
    let (_, reference) = reference_parameters(&graph, &tree, &partition);

    let result = FindShortcut::new(FindShortcutConfig::new(
        reference.congestion.max(1),
        reference.block_parameter.max(1),
    ))
    .run(&graph, &tree, &partition)
    .unwrap();

    assert!(result.all_parts_good);
    let quality = result.shortcut.quality(&graph, &partition);
    assert!(quality.block_parameter <= 3 * reference.block_parameter.max(1));
    assert!(quality.congestion <= 8 * reference.congestion.max(1) * result.iterations + 1);
}

/// The lower-bound instance: the framework does not (and should not) help,
/// but everything still runs and produces correct results.
#[test]
fn lower_bound_instance_still_computes_correct_mst() {
    let (graph, _layout) = generators::lower_bound_graph(6, 24);
    let weights = EdgeWeights::random_permutation(&graph, 13);
    let outcome = boruvka_mst(
        &graph,
        &weights,
        &BoruvkaConfig::new(ShortcutStrategy::Doubling),
    )
    .unwrap();
    assert_eq!(outcome.edges, kruskal_mst(&graph, &weights));
}

/// Part-wise aggregation through the umbrella API on a genus-g handle graph.
#[test]
fn part_aggregate_on_genus_graph() {
    let graph = generators::genus_handles(10, 10, 3);
    let tree = RootedTree::bfs(&graph, NodeId::new(0));
    let partition = generators::partitions::grid_columns(10, 10);
    let constructed = doubling_search(&graph, &tree, &partition, DoublingConfig::new()).unwrap();

    // Every member contributes its degree; the per-part sums must match a
    // direct computation.
    let degrees: Vec<Option<u64>> = graph
        .nodes()
        .map(|v| partition.part_of(v).map(|_| graph.degree(v) as u64))
        .collect();
    let outcome = part_aggregate(
        &graph,
        &tree,
        &partition,
        &constructed.shortcut,
        &degrees,
        |a, b| a + b,
    );
    for p in partition.parts() {
        let expected: u64 = partition
            .members(p)
            .iter()
            .map(|&v| graph.degree(v) as u64)
            .sum();
        assert_eq!(outcome.values[p.index()], Some(expected));
    }
    assert!(outcome.rounds > 0);
}

/// Round counts reported by the construction are internally consistent: the
/// per-iteration breakdown sums to the total, and more parts cannot make the
/// empty-work case cheaper than the real one.
#[test]
fn round_accounting_is_consistent() {
    let graph = generators::grid(12, 12);
    let tree = RootedTree::bfs(&graph, NodeId::new(0));
    let partition = generators::partitions::grid_columns(12, 12);
    let (_, reference) = reference_parameters(&graph, &tree, &partition);
    let result = FindShortcut::new(FindShortcutConfig::new(
        reference.congestion.max(1),
        reference.block_parameter.max(1),
    ))
    .run(&graph, &tree, &partition)
    .unwrap();

    let breakdown_sum: u64 = result.cost.entries().iter().map(|(_, r)| r).sum();
    assert_eq!(breakdown_sum, result.total_rounds());
    assert!(result.cost.total_for_prefix("iteration-1/") > 0);
    // Every executed iteration appears in the breakdown.
    for i in 1..=result.iterations {
        assert!(result.cost.total_for_prefix(&format!("iteration-{i}/")) > 0);
    }
}

/// The distributed protocol layer end to end through the umbrella API: the
/// whole pipeline — shortcut construction with simulated verification,
/// cross-checked routing primitives, and Boruvka with simulated per-part
/// communication — agrees with the centralized references.
#[test]
fn simulated_execution_pipeline_agrees_with_centralized_references() {
    use low_congestion_shortcuts::core::routing::ExecutionMode;
    use low_congestion_shortcuts::dist;

    let graph = generators::grid(8, 8);
    let tree = RootedTree::bfs(&graph, NodeId::new(0));
    let partition = generators::partitions::random_bfs_balls(&graph, 8, 2);
    let (_, reference) = reference_parameters(&graph, &tree, &partition);
    let config = low_congestion_shortcuts::core::construction::FindShortcutConfig::new(
        reference.congestion.max(1),
        reference.block_parameter.max(1),
    )
    .with_seed(4);

    // FindShortcut with the message-passing verification drop-in.
    let scheduled =
        dist::find_shortcut(config, ExecutionMode::Scheduled, &graph, &tree, &partition).unwrap();
    let simulated =
        dist::find_shortcut(config, ExecutionMode::Simulated, &graph, &tree, &partition).unwrap();
    assert!(simulated.all_parts_good);
    assert_eq!(simulated.shortcut, scheduled.shortcut);

    // Cross-check every routing primitive on the constructed shortcut.
    let check = dist::CrossCheck::new(&graph, &tree, &partition, &simulated.shortcut).unwrap();
    check.leader_election().unwrap();
    let weights = EdgeWeights::random_permutation(&graph, 21);
    let candidates = check.boruvka_candidates(&weights);
    check.min_edge(&candidates).unwrap();
    check
        .block_counts(3 * reference.block_parameter.max(1))
        .unwrap();

    // Boruvka with simulated per-part communication still equals Kruskal.
    let outcome = boruvka_mst(
        &graph,
        &weights,
        &BoruvkaConfig::new(ShortcutStrategy::Doubling)
            .with_seed(2)
            .with_execution(ExecutionMode::Simulated),
    )
    .unwrap();
    assert_eq!(outcome.edges, kruskal_mst(&graph, &weights));
}

/// The same full pipeline through the `api` front door: one session serves
/// construction, quality, verification and MST, and every result agrees
/// with the direct legacy calls exercised by the tests above.
#[test]
fn full_pipeline_through_the_api_facade() {
    let graph = generators::grid(10, 10);
    let partition = generators::partitions::grid_columns(10, 10);
    let mut session = api::Pipeline::on(&graph)
        .build()
        .expect("the grid is connected");

    // Construction without knowing (c, b), equal to the legacy search.
    let run = session
        .shortcut(&partition, api::Strategy::doubling())
        .unwrap();
    let tree = RootedTree::bfs(&graph, NodeId::new(0));
    let legacy = doubling_search(&graph, &tree, &partition, DoublingConfig::new()).unwrap();
    assert_eq!(run.shortcut, legacy.shortcut);
    assert!(run.report.all_parts_good);

    // Quality through the session's reusable workspaces.
    let quality = session.quality(&run.shortcut, &partition).unwrap();
    assert_eq!(quality, legacy.shortcut.quality(&graph, &partition));
    let (_, b) = run.winning_guess().unwrap();
    assert!(quality.block_parameter <= 3 * b);

    // Verification in both execution modes classifies identically.
    let scheduled = session.verify(&run.shortcut, &partition, 3 * b).unwrap();
    session.set_execution(api::ExecutionMode::Simulated);
    let simulated = session.verify(&run.shortcut, &partition, 3 * b).unwrap();
    assert_eq!(scheduled.good, simulated.good);
    assert!(simulated.report.sim.is_some());
    session.set_execution(api::ExecutionMode::Scheduled);

    // MST through the session equals Kruskal.
    let weights = EdgeWeights::random_permutation(&graph, 99);
    let mst = session
        .mst(&weights, api::ShortcutStrategy::Doubling)
        .unwrap();
    assert_eq!(mst.edges, kruskal_mst(&graph, &weights));

    // The unified report serializes as JSON without external dependencies.
    let json = run.report.to_json();
    assert!(json.starts_with("{\"operation\":\"shortcut\""));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}

/// The unified error type carries every layer's failures through one enum.
#[test]
fn unified_error_spans_the_pipeline_layers() {
    use low_congestion_shortcuts::graph::LcsError;

    // Config: zero threads is rejected at the parse surface.
    let err = low_congestion_shortcuts::graph::Threads::parse("0").unwrap_err();
    assert!(matches!(err, LcsError::Config { .. }));

    // Budget: the lower-bound instance cannot be served at (1, 1).
    let (graph, layout) = generators::lower_bound_graph(6, 16);
    let partition = generators::partitions::lower_bound_paths(&layout);
    let session = api::Pipeline::on(&graph)
        .tree(api::TreeSpec::Bfs(layout.connector(0)))
        .build()
        .unwrap();
    let err = session
        .shortcut(
            &partition,
            api::Strategy::Doubling(api::DoublingSpec {
                max_doublings: 0,
                ..api::DoublingSpec::default()
            }),
        )
        .unwrap_err();
    assert!(matches!(err, LcsError::BudgetExhausted { .. }));

    // Inconsistent inputs: a partition over the wrong node count.
    let other = generators::partitions::grid_columns(3, 3);
    let err = session
        .shortcut(&other, api::Strategy::doubling())
        .unwrap_err();
    assert!(matches!(err, LcsError::InconsistentInputs { .. }));
}
